//! Deterministic, seeded I/O fault injection.
//!
//! ff-sentinel proved the value of seeded fault injection for the
//! *microarchitectural* plane; this module applies the same discipline to
//! the *I/O* plane. Every filesystem primitive the artifact store relies
//! on — write, fsync, rename, read — routes through this module, and an
//! installed [`ChaosPolicy`] may deterministically inject the failure
//! modes real storage exhibits:
//!
//! * **torn write** — only a prefix of the bytes lands before the
//!   "process dies" (the write errors and a partial temp file remains);
//! * **disk full** — a prefix lands, then the write fails ENOSPC-style;
//! * **silent truncation** — the rename succeeds but the file loses its
//!   tail, with no error reported (bad FS, lost sectors);
//! * **bit flip** — the rename succeeds but one stored bit differs
//!   (media corruption);
//! * **clean errors** on fsync/read.
//!
//! Policies are *scoped by path substring*, so concurrently running tests
//! (each with its own temp directory) never perturb one another, and the
//! [`SeededChaos`] policy is driven by a xorshift64 generator: the same
//! seed over the same operation sequence injects the same faults. The
//! `FF_CHAOS` environment variable (parsed by [`install_from_env`])
//! arms the layer in the `ff-campaign` binary for CI chaos runs.
//!
//! For the network plane, [`TcpProxy`] is a fault-injecting TCP
//! forwarder that kills the first N proxied responses mid-flight, used to
//! prove the client's retry path end-to-end.
//!
//! With no policy installed every wrapper compiles down to the plain
//! `std::fs` call plus one mutex-free atomic load.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The filesystem operation a policy is consulted about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsOp {
    /// Writing a (temp) file's bytes.
    Write,
    /// Flushing a file (or directory) to stable storage.
    Fsync,
    /// Atomically renaming a temp file over its final name.
    Rename,
    /// Reading a file back.
    Read,
}

/// A fault to inject into one filesystem operation.
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// The operation fails cleanly with an injected I/O error.
    Error,
    /// Write only: a prefix lands (`keep_pct`% of the bytes), then the
    /// writer "dies" — the call errors and the partial file remains.
    TornWrite {
        /// Percent of the payload that reaches the disk, 0..=99.
        keep_pct: u8,
    },
    /// Write only: a prefix lands, then the device reports it is full.
    DiskFull,
    /// Rename only: the rename succeeds but the renamed file silently
    /// loses its tail, keeping `keep_pct`% of its bytes.
    Truncate {
        /// Percent of the file that survives, 0..=99.
        keep_pct: u8,
    },
    /// Rename only: the rename succeeds but one bit of the file flips.
    /// `salt` deterministically selects which bit.
    BitFlip {
        /// Entropy selecting the flipped bit (`salt % (len * 8)`).
        salt: u64,
    },
}

/// A fault-injection policy consulted once per filesystem operation.
pub trait ChaosPolicy: Send + Sync {
    /// The fault to inject for this operation, or `None` to let it
    /// through untouched.
    fn decide(&self, op: FsOp, path: &Path) -> Option<Fault>;
}

/// The installed policy. The atomic flag makes the common (disarmed)
/// path a single relaxed load with no lock.
static ARMED: AtomicBool = AtomicBool::new(false);
static POLICY: Mutex<Option<Arc<dyn ChaosPolicy>>> = Mutex::new(None);

/// Uninstalls the global policy when dropped, so a panicking test cannot
/// leave chaos armed for the rest of the process.
pub struct ChaosGuard(());

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        let mut slot = POLICY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = None;
        ARMED.store(false, Ordering::SeqCst);
    }
}

/// Installs `policy` as the process-global fault injector, replacing any
/// previous one. Scope policies by path (see [`SeededChaos::scoped`]) so
/// unrelated I/O — including other tests in the same process — is
/// unaffected.
pub fn install(policy: Arc<dyn ChaosPolicy>) -> ChaosGuard {
    let mut slot = POLICY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(policy);
    ARMED.store(true, Ordering::SeqCst);
    ChaosGuard(())
}

fn decide(op: FsOp, path: &Path) -> Option<Fault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let slot = POLICY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    slot.as_ref().and_then(|p| p.decide(op, path))
}

fn injected(what: &str, path: &Path) -> io::Error {
    io::Error::other(format!("chaos: {what} ({})", path.display()))
}

/// Chaos-routed `std::fs::write`.
///
/// # Errors
///
/// On a real filesystem error or an injected write fault (torn write /
/// disk full / clean error). Injected partial writes leave the prefix on
/// disk, exactly as a crashed writer would.
pub fn write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    match decide(FsOp::Write, path) {
        None => std::fs::write(path, bytes),
        Some(Fault::Error) => Err(injected("injected write error", path)),
        Some(Fault::TornWrite { keep_pct }) => {
            let keep = bytes.len() * usize::from(keep_pct.min(99)) / 100;
            let _ = std::fs::write(path, &bytes[..keep]);
            Err(injected("torn write, process killed mid-write", path))
        }
        Some(Fault::DiskFull) => {
            let keep = bytes.len() / 2;
            let _ = std::fs::write(path, &bytes[..keep]);
            Err(injected("no space left on device", path))
        }
        // Silent post-rename faults make no sense for a write; treat as
        // a clean pass so misconfigured policies stay harmless.
        Some(Fault::Truncate { .. } | Fault::BitFlip { .. }) => std::fs::write(path, bytes),
    }
}

/// Chaos-routed fsync of a file: opens `path` and calls `sync_all`.
///
/// # Errors
///
/// On a real fsync failure or an injected one.
pub fn fsync_file(path: &Path) -> io::Result<()> {
    if let Some(Fault::Error) = decide(FsOp::Fsync, path) {
        return Err(injected("injected fsync error", path));
    }
    std::fs::File::open(path)?.sync_all()
}

/// Best-effort fsync of a directory, making a preceding rename durable.
/// Errors are swallowed: directory fsync is unsupported on some
/// platforms and the rename itself already happened.
pub fn fsync_dir(path: &Path) {
    if decide(FsOp::Fsync, path).is_some() {
        return; // injected failure: silently skip, as a crash would
    }
    if let Ok(d) = std::fs::File::open(path) {
        let _ = d.sync_all();
    }
}

/// Chaos-routed `std::fs::rename`. Injected `Truncate`/`BitFlip` faults
/// let the rename succeed but silently corrupt the renamed file — the
/// failure mode checksums exist to catch.
///
/// # Errors
///
/// On a real rename failure or an injected clean error.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    match decide(FsOp::Rename, to) {
        None => std::fs::rename(from, to),
        Some(Fault::Error) => Err(injected("injected rename error", to)),
        Some(Fault::Truncate { keep_pct }) => {
            std::fs::rename(from, to)?;
            let len = std::fs::metadata(to)?.len();
            let keep = len * u64::from(keep_pct.min(99)) / 100;
            let f = std::fs::OpenOptions::new().write(true).open(to)?;
            f.set_len(keep)?;
            Ok(())
        }
        Some(Fault::BitFlip { salt }) => {
            std::fs::rename(from, to)?;
            let mut bytes = std::fs::read(to)?;
            if !bytes.is_empty() {
                let bit = salt as usize % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                std::fs::write(to, &bytes)?;
            }
            Ok(())
        }
        Some(Fault::TornWrite { .. } | Fault::DiskFull) => std::fs::rename(from, to),
    }
}

/// Chaos-routed `std::fs::read_to_string`.
///
/// # Errors
///
/// On a real read failure or an injected one.
pub fn read_to_string(path: &Path) -> io::Result<String> {
    if let Some(Fault::Error) = decide(FsOp::Read, path) {
        return Err(injected("injected read error", path));
    }
    std::fs::read_to_string(path)
}

/// A seeded, path-scoped fault policy: each fault class fires on average
/// once per `every` eligible operations (0 disables the class), driven
/// by a xorshift64 stream so the same seed over the same operation
/// sequence injects the same faults.
pub struct SeededChaos {
    state: Mutex<u64>,
    scope: Option<String>,
    /// 1-in-N torn writes (0 = off).
    pub torn_every: u32,
    /// 1-in-N disk-full writes (0 = off).
    pub diskfull_every: u32,
    /// 1-in-N silent truncations on rename (0 = off).
    pub truncate_every: u32,
    /// 1-in-N bit flips on rename (0 = off).
    pub bitflip_every: u32,
    /// 1-in-N fsync failures (0 = off).
    pub fsync_every: u32,
    /// 1-in-N read failures (0 = off).
    pub read_every: u32,
}

impl SeededChaos {
    /// A disarmed policy (every class off) seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SeededChaos {
            // xorshift64 has a fixed point at 0; nudge it off.
            state: Mutex::new(seed | 1),
            scope: None,
            torn_every: 0,
            diskfull_every: 0,
            truncate_every: 0,
            bitflip_every: 0,
            fsync_every: 0,
            read_every: 0,
        }
    }

    /// Restricts the policy to paths whose string form contains `scope`.
    /// Always scope test policies to the test's own temp directory.
    pub fn scoped(mut self, scope: impl Into<String>) -> Self {
        self.scope = Some(scope.into());
        self
    }

    fn next(&self) -> u64 {
        let mut s = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x
    }

    fn hit(&self, every: u32) -> bool {
        every > 0 && self.next().is_multiple_of(u64::from(every))
    }
}

impl ChaosPolicy for SeededChaos {
    fn decide(&self, op: FsOp, path: &Path) -> Option<Fault> {
        if let Some(scope) = &self.scope {
            if !path.to_string_lossy().contains(scope.as_str()) {
                return None;
            }
        }
        match op {
            FsOp::Write => {
                if self.hit(self.torn_every) {
                    return Some(Fault::TornWrite { keep_pct: (self.next() % 90) as u8 });
                }
                if self.hit(self.diskfull_every) {
                    return Some(Fault::DiskFull);
                }
                None
            }
            FsOp::Rename => {
                if self.hit(self.truncate_every) {
                    return Some(Fault::Truncate { keep_pct: (self.next() % 90) as u8 });
                }
                if self.hit(self.bitflip_every) {
                    return Some(Fault::BitFlip { salt: self.next() });
                }
                None
            }
            FsOp::Fsync => self.hit(self.fsync_every).then_some(Fault::Error),
            FsOp::Read => self.hit(self.read_every).then_some(Fault::Error),
        }
    }
}

/// Arms the chaos layer from the `FF_CHAOS` environment variable, if
/// set. Format: comma-separated `key=value` pairs, e.g.
/// `FF_CHAOS="seed=42,torn=3,scope=target/chaos"` — fault-class keys
/// (`torn`, `diskfull`, `truncate`, `bitflip`, `fsync`, `read`) give the
/// 1-in-N rate, `seed` the RNG seed, `scope` a required path substring.
/// Unknown keys and malformed pairs are ignored so a typo degrades to
/// less chaos, never to a crashed campaign.
///
/// Returns the guard keeping the policy installed; hold it for the
/// process lifetime.
pub fn install_from_env() -> Option<ChaosGuard> {
    let var = std::env::var("FF_CHAOS").ok()?;
    if var.trim().is_empty() {
        return None;
    }
    let mut policy = SeededChaos::new(0x5eed_f1ea);
    for pair in var.split(',') {
        let Some((key, value)) = pair.split_once('=') else { continue };
        let (key, value) = (key.trim(), value.trim());
        if key == "scope" {
            policy.scope = Some(value.to_string());
            continue;
        }
        let Ok(n) = value.parse::<u64>() else { continue };
        match key {
            "seed" => policy.state = Mutex::new(n | 1),
            "torn" => policy.torn_every = n as u32,
            "diskfull" => policy.diskfull_every = n as u32,
            "truncate" => policy.truncate_every = n as u32,
            "bitflip" => policy.bitflip_every = n as u32,
            "fsync" => policy.fsync_every = n as u32,
            "read" => policy.read_every = n as u32,
            _ => {}
        }
    }
    eprintln!("chaos: armed from FF_CHAOS ({var})");
    Some(install(Arc::new(policy)))
}

/// A scoped policy that faults exactly the `nth` eligible operation of
/// one kind and nothing else — the sharpest tool for tests that need
/// "the first artifact write dies" rather than a statistical fault rate.
pub struct NthOp {
    op: FsOp,
    fault: Fault,
    scope: String,
    remaining: Mutex<u64>,
}

impl NthOp {
    /// Faults the `nth` (1-based) `op` whose path contains `scope`.
    pub fn new(op: FsOp, fault: Fault, scope: impl Into<String>, nth: u64) -> Self {
        NthOp { op, fault, scope: scope.into(), remaining: Mutex::new(nth) }
    }
}

impl ChaosPolicy for NthOp {
    fn decide(&self, op: FsOp, path: &Path) -> Option<Fault> {
        if op != self.op || !path.to_string_lossy().contains(self.scope.as_str()) {
            return None;
        }
        let mut left = self.remaining.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if *left == 0 {
            return None; // already fired
        }
        *left -= 1;
        (*left == 0).then_some(self.fault)
    }
}

/// A fault-injecting TCP proxy for client-transport tests: forwards
/// byte streams between clients and `upstream`, but kills the first
/// `reset_first` connections after relaying at most `after_bytes` bytes
/// of the upstream's response — the wire-level analogue of a connection
/// reset mid-reply. Connection ordering is the only nondeterminism;
/// tests drive it with sequential requests.
pub struct TcpProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<AtomicU64>,
}

impl TcpProxy {
    /// Starts the proxy on an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// On failure to bind the listening socket.
    pub fn start(upstream: SocketAddr, reset_first: u64, after_bytes: usize) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(AtomicU64::new(0));
        let (stop2, conns2) = (Arc::clone(&stop), Arc::clone(&conns));
        std::thread::spawn(move || {
            for client in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = client else { break };
                let n = conns2.fetch_add(1, Ordering::SeqCst) + 1;
                let faulty = n <= reset_first;
                std::thread::spawn(move || forward(client, upstream, faulty, after_bytes));
            }
        });
        Ok(TcpProxy { addr, stop, conns })
    }

    /// The proxy's listening address (point clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.conns.load(Ordering::SeqCst)
    }

    /// Stops accepting new connections.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for TcpProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn forward(client: TcpStream, upstream: SocketAddr, faulty: bool, after_bytes: usize) {
    let Ok(server) = TcpStream::connect(upstream) else { return };
    let (Ok(mut c_in), Ok(mut s_out)) = (client.try_clone(), server.try_clone()) else { return };
    // Client → upstream: relay the request until the client half-closes.
    let req = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        while let Ok(n) = c_in.read(&mut buf) {
            if n == 0 || s_out.write_all(&buf[..n]).is_err() {
                break;
            }
        }
        let _ = s_out.shutdown(std::net::Shutdown::Write);
    });
    // Upstream → client: relay the response, cut short when faulty.
    let mut relayed = 0usize;
    let mut buf = [0u8; 4096];
    let mut s_in = server;
    let mut c_out = client;
    while let Ok(n) = s_in.read(&mut buf) {
        if n == 0 {
            break;
        }
        let take = if faulty { n.min(after_bytes.saturating_sub(relayed)) } else { n };
        if take > 0 && c_out.write_all(&buf[..take]).is_err() {
            break;
        }
        relayed += take;
        if faulty && relayed >= after_bytes {
            break; // drop the rest: connection reset mid-response
        }
    }
    let _ = c_out.shutdown(std::net::Shutdown::Both);
    let _ = s_in.shutdown(std::net::Shutdown::Both);
    let _ = req.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ff-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disarmed_wrappers_pass_through() {
        let dir = temp("passthrough");
        let p = dir.join("a.txt");
        write(&p, b"hello").unwrap();
        fsync_file(&p).unwrap();
        let q = dir.join("b.txt");
        rename(&p, &q).unwrap();
        fsync_dir(&dir);
        assert_eq!(read_to_string(&q).unwrap(), "hello");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_leaves_a_prefix_and_errors() {
        let dir = temp("torn");
        let p = dir.join("victim.txt");
        let _guard = install(Arc::new(NthOp::new(
            FsOp::Write,
            Fault::TornWrite { keep_pct: 50 },
            dir.to_string_lossy().into_owned(),
            1,
        )));
        let err = write(&p, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        assert_eq!(std::fs::read(&p).unwrap(), b"01234");
        // Out-of-scope paths are untouched.
        let other = std::env::temp_dir().join(format!("ff-chaos-other-{}", std::process::id()));
        write(&other, b"ok").unwrap();
        std::fs::remove_file(&other).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn silent_faults_apply_after_rename() {
        let dir = temp("silent");
        let scope = dir.to_string_lossy().into_owned();
        let src = dir.join("src.txt");
        let dst = dir.join("dst.txt");

        std::fs::write(&src, "0123456789").unwrap();
        {
            let _guard = install(Arc::new(NthOp::new(
                FsOp::Rename,
                Fault::Truncate { keep_pct: 30 },
                scope.clone(),
                1,
            )));
            rename(&src, &dst).unwrap();
        }
        assert_eq!(std::fs::read_to_string(&dst).unwrap(), "012");

        std::fs::write(&src, "AAAA").unwrap();
        {
            let _guard =
                install(Arc::new(NthOp::new(FsOp::Rename, Fault::BitFlip { salt: 9 }, scope, 1)));
            rename(&src, &dst).unwrap();
        }
        let flipped = std::fs::read(&dst).unwrap();
        assert_ne!(flipped, b"AAAA");
        assert_eq!(flipped.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_policy_is_deterministic_and_scoped() {
        let make = |seed| {
            let mut p = SeededChaos::new(seed).scoped("/ff-scope/");
            p.torn_every = 3;
            p
        };
        let seq = |pol: &SeededChaos| {
            (0..64)
                .map(|i| {
                    let path = PathBuf::from(format!("/ff-scope/f{i}"));
                    pol.decide(FsOp::Write, &path).is_some()
                })
                .collect::<Vec<_>>()
        };
        assert!(make(7).decide(FsOp::Write, Path::new("/elsewhere/x")).is_none());
        let (a, b) = (seq(&make(7)), seq(&make(7)));
        assert_eq!(a, b, "same seed, same fault pattern");
        assert!(a.iter().any(|&f| f), "1-in-3 must fire within 64 ops");
        assert!(a.iter().any(|&f| !f), "1-in-3 must also pass some ops");
        assert_ne!(seq(&make(9)), a, "different seed, different pattern");
    }

    #[test]
    fn proxy_passes_through_then_resets_when_faulty() {
        // A tiny echo-ish upstream: reads the request, replies with a
        // fixed 20-byte body, closes.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in upstream.incoming() {
                let Ok(mut conn) = conn else { break };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    let _ = conn.read(&mut buf);
                    let _ = conn.write_all(b"01234567890123456789");
                });
            }
        });
        let proxy = TcpProxy::start(up_addr, 1, 5).unwrap();
        let fetch = || {
            let mut s = TcpStream::connect(proxy.addr()).unwrap();
            s.write_all(b"ping\n").unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut out = Vec::new();
            let _ = s.read_to_end(&mut out);
            out
        };
        // First connection: reset after 5 relayed bytes.
        assert_eq!(fetch(), b"01234");
        // Second connection: clean pass-through.
        assert_eq!(fetch(), b"01234567890123456789");
        assert_eq!(proxy.connections(), 2);
    }
}
