//! Write a kernel in the textual assembly syntax, compile it with the
//! EPIC scheduler, and compare all execution models on it.
//!
//! ```sh
//! cargo run --release -p flea-flicker --example custom_kernel
//! ```

use flea_flicker::baselines::{InOrder, OutOfOrder, Runahead};
use flea_flicker::compiler::{compile, CompilerOptions};
use flea_flicker::engine::{ExecutionModel, MachineConfig, SimCase};
use flea_flicker::isa::asm::parse_program;
use flea_flicker::isa::MemoryImage;
use flea_flicker::multipass::Multipass;

/// A pointer chase with a dependent lookup into a separate value table —
/// a miniature mcf. The compiler finds the chase SCC (it precedes two
/// variable-latency loads) and inserts a RESTART after it.
const KERNEL: &str = "
B0:
    movimm r1 = #1048576      // list head
    movimm r3 = #0            // accumulator
B1:
    load r1 = r1 @0           // next = *node          (the chase)
    load r10 = r1 #8 @0       // ptr  = node->value_ptr
    load r11 = r10 @1         // v    = *ptr            (second miss)
    add r3 = r3 r11
    cmpne p1 = r1 r0
    (p1) br B1
B2:
    halt
";

fn main() {
    let parsed = parse_program(KERNEL).expect("kernel assembles");
    let program = compile(&parsed, &CompilerOptions::default());
    println!("compiled kernel (stop bits + RESTART inserted by the compiler):\n{program}");

    // Build a 64-node strided list plus a strided value table.
    let mut mem = MemoryImage::new();
    let base = 1_048_576u64;
    let values = 64 * 1_048_576u64;
    let stride = 96 * 1024;
    for i in 0..64u64 {
        let a = base + i * stride;
        let next = if i == 63 { 0 } else { base + (i + 1) * stride };
        mem.store(a, next);
        mem.store(a + 8, values + i * stride);
        mem.store(values + i * stride, i + 1);
    }
    mem.store(8, values); // null node's value_ptr (read on the final hop)

    let machine = MachineConfig::itanium2_base();
    let case = SimCase::new(&program, mem);
    let base_run = InOrder::new(machine).run(&case);
    println!("{:<10} {:>8} cycles", "inorder", base_run.stats.cycles);
    for (name, r) in [
        ("runahead", Runahead::new(machine).run(&case)),
        ("multipass", Multipass::new(machine).run(&case)),
        ("ooo", OutOfOrder::new(machine).run(&case)),
    ] {
        assert!(r.final_state.semantically_eq(&base_run.final_state));
        println!(
            "{:<10} {:>8} cycles  ({:.2}x)",
            name,
            r.stats.cycles,
            base_run.stats.cycles as f64 / r.stats.cycles as f64
        );
    }
    // The chase advances before the lookup, so node 0's value is skipped
    // and the final (null) hop reads node 0's value slot: 2..=64 plus 1.
    assert_eq!(base_run.final_state.int(3), (1..=64).sum::<u64>());
}
