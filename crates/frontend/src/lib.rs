//! Instruction-fetch front end for the flea-flicker simulator.
//!
//! Every pipeline model in the workspace shares this front end, matching the
//! paper's methodology (the models differ only behind the instruction
//! buffer). It provides:
//!
//! * [`Gshare`] — the 1024-entry gshare branch predictor of Table 2, with
//!   speculative global-history update and mispredict repair;
//! * [`FetchUnit`] — a fetch engine that walks the predicted path up to six
//!   instructions per cycle through the L1I (via `ff_mem`), filling a FIFO
//!   instruction buffer that backends consume by sequence number. The
//!   multipass instruction queue (256 entries) and the baseline buffer
//!   (24 entries) are both instances of this unit with different capacities.
//!
//! Backends resolve branches by comparing the actual next pc against the
//! fetched [`FetchedInst::predicted_next`]; on a mispredict they call
//! [`FetchUnit::flush_after`] which squashes younger instructions, repairs
//! the global history, and charges the front-end refill penalty.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fetch;
pub mod gshare;

pub use fetch::{FetchUnit, FetchedInst};
pub use gshare::Gshare;
