//! List scheduling into EPIC issue groups.
//!
//! The scheduler reorders a basic block's instructions by critical-path
//! priority, packs them into issue groups of at most six instructions
//! respecting the Itanium 2 functional-unit mix, and emits stop bits on
//! group boundaries. This is the "meticulous compile-time scheduling" the
//! multipass pipeline exploits: the better the static schedule, the more of
//! the remaining stall time is the unanticipable load latency that
//! multipass targets.

use ff_isa::{FuClass, Inst};

use crate::dag::DepDag;

/// Per-cycle functional-unit slot budget (Itanium 2-like: 4 M, 2 I, 2 F,
/// 3 B, at most 6 instructions total).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuSlots {
    /// Memory ports.
    pub mem: u32,
    /// Integer ports.
    pub int: u32,
    /// Floating-point ports.
    pub fp: u32,
    /// Branch ports.
    pub branch: u32,
    /// Total issue width.
    pub width: u32,
}

impl Default for FuSlots {
    fn default() -> Self {
        FuSlots { mem: 4, int: 2, fp: 2, branch: 3, width: 6 }
    }
}

impl FuSlots {
    /// Attempts to reserve a slot for `inst`, preferring an I port for
    /// A-type ALU operations and falling back to an M port (the Itanium 2
    /// A-type rule). Returns whether the reservation succeeded.
    pub fn try_take(&mut self, inst: &Inst) -> bool {
        if self.width == 0 {
            return false;
        }
        let taken = match inst.op().fu_class() {
            FuClass::Mem => take(&mut self.mem),
            FuClass::Fp => take(&mut self.fp),
            FuClass::Branch => take(&mut self.branch),
            FuClass::Int => {
                if inst.op().is_a_type() {
                    take(&mut self.int) || take(&mut self.mem)
                } else {
                    take(&mut self.int)
                }
            }
        };
        if taken {
            self.width -= 1;
        }
        taken
    }
}

fn take(slot: &mut u32) -> bool {
    if *slot > 0 {
        *slot -= 1;
        true
    } else {
        false
    }
}

/// List-schedules one basic block, returning the instructions in their new
/// order with stop bits marking issue-group boundaries. The final
/// instruction always carries a stop bit.
///
/// The schedule respects every dependence edge of [`DepDag`]: an
/// instruction is placed in cycle `c` only if each predecessor `p` was
/// placed at `cycle(p) + min_delay <= c`, and each group satisfies the
/// [`FuSlots`] budget.
pub fn schedule_block(block: &[Inst]) -> Vec<Inst> {
    if block.is_empty() {
        return Vec::new();
    }
    let dag = DepDag::build(block);
    let prio = dag.critical_path_priorities();
    let n = block.len();
    let mut placed: Vec<Option<u32>> = vec![None; n]; // cycle of each inst
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut groups: Vec<u32> = Vec::with_capacity(n); // cycle per emitted inst
    let mut cycle: u32 = 0;
    let mut remaining = n;

    while remaining > 0 {
        let mut slots = FuSlots::default();
        // Candidates ready this cycle, highest priority first, source order
        // as tie-break (stable because indices ascend).
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| placed[i].is_none())
            .filter(|&i| {
                dag.pred_edges(i).all(|e| match placed[e.from] {
                    Some(c) => c + e.min_delay <= cycle,
                    None => false,
                })
            })
            .collect();
        ready.sort_by_key(|&i| std::cmp::Reverse(prio[i]));
        let mut scheduled_any = false;
        for i in ready {
            if slots.try_take(&block[i]) {
                placed[i] = Some(cycle);
                order.push(i);
                groups.push(cycle);
                remaining -= 1;
                scheduled_any = true;
            }
        }
        let _ = scheduled_any; // empty cycles simply advance
        cycle += 1;
    }

    // Emit in placement order with stop bits at group boundaries.
    let mut out: Vec<Inst> = Vec::with_capacity(n);
    for (k, &i) in order.iter().enumerate() {
        let mut inst = block[i].clone();
        let last_of_group = k + 1 == n || groups[k + 1] != groups[k];
        inst.set_stop(last_of_group);
        out.push(inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{Op, Reg};

    fn groups_of(block: &[Inst]) -> Vec<Vec<String>> {
        let mut gs = vec![Vec::new()];
        for i in block {
            gs.last_mut().unwrap().push(i.op().to_string());
            if i.ends_group() {
                gs.push(Vec::new());
            }
        }
        gs.pop();
        gs
    }

    #[test]
    fn independent_ops_share_a_group() {
        let block = vec![
            Inst::new(Op::MovImm).dst(Reg::int(1)).imm(1),
            Inst::new(Op::MovImm).dst(Reg::int(2)).imm(2),
            Inst::new(Op::MovImm).dst(Reg::int(3)).imm(3),
        ];
        let s = schedule_block(&block);
        let gs = groups_of(&s);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].len(), 3);
    }

    #[test]
    fn raw_dependence_splits_groups() {
        let block = vec![
            Inst::new(Op::MovImm).dst(Reg::int(1)).imm(1),
            Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(1)).src(Reg::int(1)),
        ];
        let s = schedule_block(&block);
        let gs = groups_of(&s);
        assert_eq!(gs.len(), 2);
    }

    #[test]
    fn multicycle_producer_creates_gap_not_reorder_violation() {
        // mul feeds add: the add must be >= 5 cycles later, but an
        // independent op can fill the first group.
        let block = vec![
            Inst::new(Op::Mul).dst(Reg::int(1)).src(Reg::int(9)).src(Reg::int(9)),
            Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(1)).src(Reg::int(1)),
            Inst::new(Op::MovImm).dst(Reg::int(3)).imm(7),
        ];
        let s = schedule_block(&block);
        let gs = groups_of(&s);
        // First group holds mul + movimm; dependent add comes later alone.
        assert_eq!(gs[0].len(), 2);
        assert_eq!(gs.last().unwrap(), &vec!["add".to_string()]);
    }

    #[test]
    fn respects_issue_width() {
        let block: Vec<Inst> =
            (1..=12).map(|i| Inst::new(Op::MovImm).dst(Reg::int(i)).imm(i as i64)).collect();
        let s = schedule_block(&block);
        for g in groups_of(&s) {
            assert!(g.len() <= 6);
        }
    }

    #[test]
    fn respects_fu_mix() {
        // 4 loads + 2 A-type fit (4 M + 2 I); a 5th load must spill over.
        let block: Vec<Inst> =
            (1..=5).map(|i| Inst::new(Op::Load).dst(Reg::int(i)).src(Reg::int(60 + i))).collect();
        let s = schedule_block(&block);
        let gs = groups_of(&s);
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].len(), 4);
        assert_eq!(gs[1].len(), 1);
    }

    #[test]
    fn a_type_overflows_to_mem_ports() {
        // 6 simple adds: 2 on I ports, 4 on M ports — one group.
        let block: Vec<Inst> = (1..=6)
            .map(|i| Inst::new(Op::AddImm).dst(Reg::int(i)).src(Reg::int(0)).imm(i as i64))
            .collect();
        let s = schedule_block(&block);
        assert_eq!(groups_of(&s).len(), 1);
    }

    #[test]
    fn compares_compete_for_i_ports() {
        // 3 compares: only 2 I ports, no A-type fallback — two groups.
        let block: Vec<Inst> = (1..=3)
            .map(|i| Inst::new(Op::CmpEq).dst(Reg::pred(i)).src(Reg::int(i)).src(Reg::int(0)))
            .collect();
        let s = schedule_block(&block);
        assert_eq!(groups_of(&s).len(), 2);
    }

    #[test]
    fn branch_stays_last() {
        let block = vec![
            Inst::new(Op::Add).dst(Reg::int(1)).src(Reg::int(2)).src(Reg::int(3)),
            Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)),
            Inst::new(Op::Br { target: ff_isa::program::BlockId(0) }).qp(Reg::pred(1)),
        ];
        let s = schedule_block(&block);
        assert!(s.last().unwrap().op().is_branch());
        assert!(s.last().unwrap().ends_group());
    }

    #[test]
    fn empty_block_is_fine() {
        assert!(schedule_block(&[]).is_empty());
    }

    #[test]
    fn all_instructions_survive() {
        let block = vec![
            Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(2)),
            Inst::new(Op::Store).src(Reg::int(1)).src(Reg::int(3)),
            Inst::new(Op::Nop),
            Inst::new(Op::Halt),
        ];
        let s = schedule_block(&block);
        assert_eq!(s.len(), block.len());
    }
}
