//! Baseline execution models for the flea-flicker simulator.
//!
//! Three comparison points from the paper's evaluation:
//!
//! * [`InOrder`] — the baseline EPIC in-order pipeline ("base" in
//!   Figure 6): scoreboarded stall-on-use, one compiler issue group per
//!   cycle, split issue within a group.
//! * [`Runahead`] — the Dundas–Mudge runahead scheme (§2, §5.4): on a
//!   load-use stall the pipeline pre-executes ahead purely for prefetching;
//!   no results are preserved and there is no advance restart.
//! * [`OutOfOrder`] — the idealized dynamic-scheduling model of §5.1
//!   (128-entry window, 256-entry ROB, ideal predicate renaming, 3 extra
//!   pipe stages), plus the *realistic* decentralized variant of §5.2
//!   (three 16-entry scheduling queues) via
//!   [`OutOfOrder::realistic`].
//!
//! All models implement [`ff_engine::ExecutionModel`] and are validated
//! against the golden interpreter: their final architectural state must be
//! semantically identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inorder;
pub mod ooo;
pub mod runahead;

pub use inorder::InOrder;
pub use ooo::OutOfOrder;
pub use runahead::Runahead;
