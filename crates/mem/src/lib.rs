//! Timing memory hierarchy for the flea-flicker simulator.
//!
//! This crate is the *timing* half of the memory system (the functional half
//! is `ff_isa::MemoryImage`). It models the cache hierarchy of the paper's
//! Table 2 — separate L1I and L1D backed by unified L2 and L3 and main
//! memory — with set-associative LRU caches, non-blocking misses through a
//! bounded MSHR file (16 outstanding misses, same-line merging), and the
//! alternative hierarchies of Figure 7 (`config1`, `config2`).
//!
//! Pipeline models call [`MemorySystem::access`] with the current cycle and
//! receive either the completion cycle plus the level that served the
//! request, or a [`MemAccess::Retry`] when every MSHR is busy (the request
//! must be replayed on a later cycle, which is how the "Max Outstanding
//! Misses: 16" limit of Table 2 constrains memory-level parallelism).
//!
//! # Example
//!
//! ```
//! use ff_mem::{AccessKind, HierarchyConfig, MemAccess, MemorySystem};
//!
//! let mut mem = MemorySystem::new(HierarchyConfig::itanium2_base());
//! // Cold miss goes to main memory: 145 cycles.
//! match mem.access(0x4000, AccessKind::DataRead, 0) {
//!     MemAccess::Done { complete_at, .. } => assert_eq!(complete_at, 145),
//!     MemAccess::Retry => unreachable!("MSHRs are empty"),
//! }
//! // A later access to the same line hits in L1D.
//! match mem.access(0x4000, AccessKind::DataRead, 200) {
//!     MemAccess::Done { complete_at, .. } => assert_eq!(complete_at, 201),
//!     MemAccess::Retry => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod mshr;
pub mod system;

pub use cache::Cache;
pub use config::{CacheConfig, HierarchyConfig};
pub use mshr::MshrFile;
pub use system::{AccessKind, HitLevel, MemAccess, MemStats, MemorySystem};
