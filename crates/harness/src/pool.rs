//! A deterministic self-scheduling worker pool over scoped threads.
//!
//! Workers pull the next job index from a shared atomic cursor, so the
//! *assignment* of jobs to workers is racy — but every job is independent
//! and results are scattered back by job index, so the returned vector is
//! identical for any worker count. That property (not lock-step
//! scheduling) is what the `--jobs 4` ≡ `--jobs 1` determinism test pins.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `run` over every job on `workers` threads, returning results in
/// job order regardless of which worker executed which job.
///
/// `init(worker_id)` builds one per-worker state value (e.g. a workload
/// cache) that is threaded through every job that worker executes.
pub fn run_jobs<J, S, R>(
    jobs: &[J],
    workers: usize,
    init: impl Fn(usize) -> S + Sync,
    run: impl Fn(&mut S, usize, &J) -> R + Sync,
) -> Vec<R>
where
    J: Sync,
    R: Send,
{
    let workers = workers.clamp(1, jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|wid| {
                let cursor = &cursor;
                let init = &init;
                let run = &run;
                scope.spawn(move || {
                    let mut state = init(wid);
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        out.push((i, run(&mut state, i, &jobs[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("campaign worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every job index visited exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..97).collect();
        let serial = run_jobs(&jobs, 1, |_| (), |_, _, j| j * j);
        for workers in [2, 3, 8] {
            let parallel = run_jobs(&jobs, workers, |_| (), |_, _, j| j * j);
            assert_eq!(parallel, serial, "workers={workers}");
        }
        assert_eq!(serial[10], 100);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let jobs: Vec<usize> = (0..50).collect();
        let hits = AtomicU64::new(0);
        let out = run_jobs(
            &jobs,
            4,
            |_| (),
            |_, i, j| {
                hits.fetch_add(1, Ordering::Relaxed);
                assert_eq!(i, *j);
                i
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn worker_state_persists_across_jobs() {
        // Each worker counts the jobs it ran; counts must total the job count.
        let jobs: Vec<usize> = (0..40).collect();
        let counts: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        run_jobs(
            &jobs,
            3,
            |wid| wid,
            |wid, _, _| {
                counts[*wid].fetch_add(1, Ordering::Relaxed);
            },
        );
        let total: usize = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_jobs(&[] as &[u32], 8, |_| (), |_, _, j| *j);
        assert!(out.is_empty());
    }
}
