//! Runs one execution model against the golden interpreter in lockstep and
//! prints the `ff-debug` first-divergence triage report.
//!
//! ```sh
//! cargo run --release --example compare_divergence -- <workload> <model> [fault-index]
//! cargo run --release --example compare_divergence -- --bundle <path>
//! ```
//!
//! `<workload>` is a workload name (`mcf`, `bzip2`, ... — see
//! `inspect_workload`), `<model>` one of `inorder`, `runahead`, `ooo`,
//! `ooo-real`, `mp`, `mp-noregroup`, `mp-norestart`. The optional
//! `fault-index` injects a single-bit corruption into the N-th multipass
//! result-store merge (`MultipassConfig::fault_corrupt_rs_merge`) so the
//! triage output can be demonstrated on a healthy tree.
//!
//! `--bundle` loads a crash bundle written by a failed `ff-campaign` job
//! (under `<out>/bundles/`), prints the recorded failure context, rebuilds
//! the exact workload and model from the bundle's grid coordinates, and
//! replays the job under the lockstep checker — campaign failure to triage
//! report in one command.

use std::process::ExitCode;

use flea_flicker::baselines::{InOrder, OutOfOrder, Runahead};
use flea_flicker::debug::compare_model;
use flea_flicker::engine::{ExecutionModel, MachineConfig, SimCase};
use flea_flicker::experiments::{HierKind, ModelKind, Suite};
use flea_flicker::harness::job::parse_scale;
use flea_flicker::harness::CrashBundle;
use flea_flicker::multipass::{Multipass, MultipassConfig};
use flea_flicker::workloads::{Scale, Workload};

fn usage() -> ExitCode {
    eprintln!("usage: compare_divergence <workload> <model> [fault-index]");
    eprintln!("       compare_divergence --bundle <path>");
    eprintln!("  models: inorder runahead ooo ooo-real mp mp-noregroup mp-norestart");
    ExitCode::FAILURE
}

/// Replays a campaign crash bundle: print what the campaign saw, then run
/// the same (model, hier, workload, seed) under the lockstep checker.
fn replay_bundle(path: &str) -> ExitCode {
    let bundle = match CrashBundle::read(std::path::Path::new(path)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot load bundle: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("crash bundle: {}", bundle.job_id);
    println!("  error: {}", bundle.error);
    if let Some(budget) = bundle.cycle_budget {
        println!("  cycle budget: {budget}");
    }
    for v in &bundle.violations {
        println!("  violation: {v}");
    }
    println!("  retired before failure: {}", bundle.retired_total);
    if !bundle.last_retirements.is_empty() {
        println!("  last {} retirements (oldest first):", bundle.last_retirements.len());
        for line in &bundle.last_retirements {
            println!("    {line}");
        }
    }

    let (Some(model), Some(hier), Some(scale)) = (
        ModelKind::parse(&bundle.model),
        HierKind::parse(&bundle.hier),
        parse_scale(&bundle.scale),
    ) else {
        eprintln!("bundle names an unknown model/hier/scale");
        return ExitCode::FAILURE;
    };
    let Some(w) = Workload::by_name_seeded(&bundle.bench, scale, bundle.seed) else {
        eprintln!("bundle names an unknown benchmark `{}`", bundle.bench);
        return ExitCode::FAILURE;
    };

    println!();
    println!("replaying {} under the lockstep checker...", bundle.job_id);
    // The replay runs without the campaign's watchdog budget: the goal is
    // a complete lockstep comparison, not a fast failure.
    let case = SimCase::new(&w.program, w.mem.clone());
    let mut model = Suite::build_model(model, hier);
    let report = compare_model(model.as_mut(), &case);
    println!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "--bundle") {
        let Some(path) = args.get(2) else {
            return usage();
        };
        return replay_bundle(path);
    }
    let (Some(workload), Some(model_name)) = (args.get(1), args.get(2)) else {
        return usage();
    };
    let fault: Option<u64> = match args.get(3) {
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => return usage(),
        },
        None => None,
    };

    let Some(w) = Workload::by_name(workload, Scale::Test) else {
        eprintln!("unknown workload `{workload}`");
        return usage();
    };

    let machine = MachineConfig::itanium2_base();
    let mp_config = |mut c: MultipassConfig| {
        c.fault_corrupt_rs_merge = fault;
        c
    };
    let mut model: Box<dyn ExecutionModel> = match model_name.as_str() {
        "inorder" => Box::new(InOrder::new(machine)),
        "runahead" => Box::new(Runahead::new(machine)),
        "ooo" => Box::new(OutOfOrder::new(machine)),
        "ooo-real" => Box::new(OutOfOrder::realistic(machine)),
        "mp" => Box::new(Multipass::with_config(mp_config(MultipassConfig::new(machine)))),
        "mp-noregroup" => Box::new(Multipass::with_config(mp_config(
            MultipassConfig::without_regrouping(machine),
        ))),
        "mp-norestart" => {
            Box::new(Multipass::with_config(mp_config(MultipassConfig::without_restart(machine))))
        }
        other => {
            eprintln!("unknown model `{other}`");
            return usage();
        }
    };
    if fault.is_some() && !model_name.starts_with("mp") {
        eprintln!("fault injection only applies to multipass models");
        return usage();
    }

    let case = SimCase::new(&w.program, w.mem.clone());
    let report = compare_model(&mut *model, &case);
    println!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
