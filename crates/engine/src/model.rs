//! The execution-model interface shared by every pipeline.

use ff_isa::{ArchState, MemoryImage, Program};
use ff_mem::MemStats;

use crate::activity::Activity;
use crate::retire::{NullRetireHook, RetireHook};
use crate::stats::RunStats;

/// One simulation input: a compiled program plus its initial data memory.
///
/// Initial register values are established by setup code in the program's
/// first blocks (the workload generators emit `MovImm` preludes); bulk data
/// (arrays, linked structures) comes pre-loaded in `initial_mem`.
#[derive(Clone, Debug)]
pub struct SimCase<'a> {
    /// The compiled program to run.
    pub program: &'a Program,
    /// Initial contents of data memory.
    pub initial_mem: MemoryImage,
    /// Safety cap on dynamic instructions (guards runaway programs).
    pub max_insts: u64,
}

impl<'a> SimCase<'a> {
    /// Creates a case with a default instruction budget.
    pub fn new(program: &'a Program, initial_mem: MemoryImage) -> Self {
        SimCase { program, initial_mem, max_insts: 200_000_000 }
    }

    /// The initial architectural state implied by this case.
    pub fn initial_state(&self) -> ArchState {
        let mut s = ArchState::new();
        s.mem = self.initial_mem.clone();
        s
    }
}

/// Output of one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Cycle counts and attribution.
    pub stats: RunStats,
    /// Structure activity for the power models.
    pub activity: Activity,
    /// Memory-hierarchy counters.
    pub mem_stats: MemStats,
    /// Final architectural state — must be semantically equal to the golden
    /// interpreter's for every model.
    pub final_state: ArchState,
}

/// A cycle-level execution model (in-order, runahead, multipass,
/// out-of-order).
pub trait ExecutionModel {
    /// Short name used in experiment output ("inorder", "MP", "OOO", ...).
    fn name(&self) -> &'static str;

    /// Simulates `case` to completion, reporting every retired dynamic
    /// instruction to `hook` in retirement order. The hook must not affect
    /// timing: `run_hooked` and [`ExecutionModel::run`] produce identical
    /// [`RunResult`]s.
    ///
    /// # Panics
    ///
    /// Implementations panic if the program exceeds the case's instruction
    /// budget or the configured cycle cap (indicating a malformed workload).
    fn run_hooked(&mut self, case: &SimCase<'_>, hook: &mut dyn RetireHook) -> RunResult;

    /// Simulates `case` to completion and returns the run's results.
    ///
    /// # Panics
    ///
    /// See [`ExecutionModel::run_hooked`].
    fn run(&mut self, case: &SimCase<'_>) -> RunResult {
        self.run_hooked(case, &mut NullRetireHook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{Inst, Op, Reg};

    #[test]
    fn initial_state_carries_memory() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::Halt));
        let mut mem = MemoryImage::new();
        mem.store(0x100, 7);
        let case = SimCase::new(&p, mem);
        let s = case.initial_state();
        assert_eq!(s.mem.load(0x100), 7);
        assert_eq!(s.read(Reg::int(5)), 0);
    }
}
