//! OpenIMPACT-like compiler stand-in for the flea-flicker simulator.
//!
//! The paper compiles its benchmarks with the OpenIMPACT EPIC compiler,
//! relying on three properties this crate reproduces:
//!
//! 1. **Meticulous static scheduling** — [`sched`] list-schedules each basic
//!    block by critical path and packs instructions into ≤6-wide issue
//!    groups that respect the Itanium 2 functional-unit mix, emitting EPIC
//!    stop bits.
//! 2. **Points-to-based memory independence** — memory dependence edges are
//!    built from the alias regions carried on instructions
//!    (`ff_isa::Inst::alias_region`), allowing aggressive reordering of
//!    provably disjoint loads and stores.
//! 3. **Critical-load RESTART insertion** (paper §3.3) — [`scc`] finds
//!    strongly connected components of the loop dataflow graph
//!    (loop-carried dependences) and [`restart`] inserts a `RESTART`
//!    instruction after every load in a *critical* SCC, i.e. an SCC that
//!    feeds many more variable-latency instructions than feed it.
//!
//! The one-call entry point is [`compile`].
//!
//! # Example
//!
//! ```
//! use ff_compiler::{compile, CompilerOptions};
//! use ff_isa::{Inst, Op, Program, Reg};
//!
//! let mut p = Program::new();
//! let b = p.add_block();
//! p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(3));
//! p.push(b, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(4));
//! p.push(b, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(1)).src(Reg::int(2)));
//! p.push(b, Inst::new(Op::Halt));
//! let compiled = compile(&p, &CompilerOptions::default());
//! assert!(compiled.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod restart;
pub mod scc;
pub mod sched;
pub mod unroll;
pub mod verify;

pub use dag::{DepDag, DepKind};
pub use restart::{insert_restarts, RestartPolicy};
pub use scc::{loop_sccs, LoopScc};
pub use sched::{schedule_block, FuSlots};
pub use unroll::unroll_loops;
pub use verify::{verify_schedule, ScheduleViolation};

use ff_isa::Program;

/// Options controlling the compilation pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompilerOptions {
    /// Whether to insert RESTART markers for multipass advance restart.
    pub insert_restarts: bool,
    /// Criticality policy for RESTART insertion.
    pub restart_policy: RestartPolicy,
    /// Unroll eligible counted loops by this factor before scheduling
    /// (`None` disables; see [`unroll::unroll_loops`]).
    pub unroll: Option<u32>,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            insert_restarts: true,
            restart_policy: RestartPolicy::default(),
            unroll: None,
        }
    }
}

/// Compiles a straight-order program: optionally inserts RESTART markers in
/// critical loop SCCs, then list-schedules every basic block into EPIC
/// issue groups with stop bits.
///
/// The input program's instructions within each block must be in a
/// dependence-correct (source) order; the scheduler may reorder them
/// subject to register and memory dependences.
pub fn compile(program: &Program, options: &CompilerOptions) -> Program {
    let unrolled = match options.unroll {
        Some(factor) if factor >= 2 => unroll_loops(program, factor),
        _ => program.clone(),
    };
    let with_restarts = if options.insert_restarts {
        insert_restarts(&unrolled, &options.restart_policy)
    } else {
        unrolled
    };
    let mut out = Program::new();
    for bi in 0..with_restarts.num_blocks() {
        let id = out.add_block();
        debug_assert_eq!(id.0 as usize, bi);
        let block =
            with_restarts.block(ff_isa::program::BlockId(bi as u32)).expect("block index in range");
        for inst in schedule_block(block) {
            out.push(id, inst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::interp::Interpreter;
    use ff_isa::{Inst, Op, Reg};

    /// Compilation must preserve program semantics.
    #[test]
    fn compile_preserves_semantics() {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        // r1 = 5; r2 = 0; loop: r2 += r1; r1 -= 1; if r1 != 0 goto loop
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(5));
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(0));
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(2)).src(Reg::int(1)));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(-1));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)));
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
        p.push(b2, Inst::new(Op::Halt));
        let c = compile(&p, &CompilerOptions::default());
        assert!(c.validate().is_ok());

        let mut ref_i = Interpreter::new(&p);
        ref_i.run(100_000).unwrap();
        let mut got_i = Interpreter::new(&c);
        got_i.run(100_000).unwrap();
        assert!(ref_i.state().semantically_eq(got_i.state()));
        assert_eq!(got_i.state().int(2), 15);
    }

    #[test]
    fn compile_sets_stop_bits() {
        let mut p = Program::new();
        let b = p.add_block();
        for i in 1..=9 {
            p.push(b, Inst::new(Op::MovImm).dst(Reg::int(i)).imm(i as i64));
        }
        p.push(b, Inst::new(Op::Halt));
        let c = compile(&p, &CompilerOptions::default());
        let block = c.block(ff_isa::program::BlockId(0)).unwrap();
        // 9 independent moves + halt cannot fit one 6-wide group.
        let groups = block.iter().filter(|i| i.ends_group()).count();
        assert!(groups >= 2, "expected at least two issue groups");
        // Every group respects the 6-wide limit.
        let mut w = 0;
        for i in block {
            w += 1;
            if i.ends_group() {
                assert!(w <= 6);
                w = 0;
            }
        }
    }
}
