//! Minimal hand-rolled JSON, in the spirit of `ff_experiments::csv`: the
//! build environment vendors no serde, and campaign artifacts only need
//! objects, arrays, strings, unsigned/float numbers, and booleans.
//!
//! Objects preserve insertion order, so serialization is deterministic:
//! the same value always renders to the same bytes — the property the
//! parallel-vs-serial campaign determinism test relies on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (cycle counts, hashes, seeds).
    U64(u64),
    /// A float (wall-clock seconds, ratios).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (accepting integer literals too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document (see the module-level [`parse`]).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        parse(text)
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                // Fixed notation keeps output deterministic and readable.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first syntax
/// error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Artifacts never emit surrogate pairs; reject them.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point {code:#x}"))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float || text.starts_with('-') {
            text.parse::<f64>().map(Json::F64).map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<u64>().map(Json::U64).map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("mcf \"quoted\"\n".to_string())),
            ("cycles", Json::U64(u64::MAX)),
            ("ratio", Json::F64(1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("nested", Json::obj(vec![("x", Json::U64(7))])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // Deterministic: render → parse → render is a fixed point.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": 3, "b": "x", "c": [1], "d": 2.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(2.5));
        assert!(v.get("nope").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "{} extra", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match &v {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!(),
        }
    }
}
