//! Property-based cross-model validation on randomly generated programs.
//!
//! Random loop kernels (random ALU/memory/predication mixes over a bounded
//! memory window) are compiled through the full `ff-compiler` pipeline and
//! executed on every pipeline model; all of them must agree with the golden
//! interpreter. This exercises the multipass machinery (SRF/RS/ASC/S-bits,
//! regrouping, restart) against arbitrary dependence patterns, including
//! store-to-load forwarding and value misspeculation.

use proptest::prelude::*;

use flea_flicker::baselines::{InOrder, OutOfOrder, Runahead};
use flea_flicker::compiler::{compile, CompilerOptions};
use flea_flicker::engine::{ExecutionModel, MachineConfig, SimCase};
use flea_flicker::isa::interp::Interpreter;
use flea_flicker::isa::{ArchState, Inst, MemoryImage, Op, Program, Reg};
use flea_flicker::multipass::{Multipass, MultipassConfig};

/// One randomly generated body instruction.
#[derive(Clone, Debug)]
enum BodyInst {
    /// `rd = rs1 op rs2`
    Alu { op_idx: u8, rd: u8, rs1: u8, rs2: u8 },
    /// `rd = rs + imm`
    AddImm { rd: u8, rs: u8, imm: i8 },
    /// `rd = mul rs1, rs2` (multi-cycle)
    Mul { rd: u8, rs1: u8, rs2: u8 },
    /// `rd = load [base_window + (rs & mask)]` — data-dependent address.
    Load { rd: u8, rs: u8 },
    /// `store [base_window + (rs & mask)] = rs2`
    Store { rs: u8, rs2: u8 },
    /// `p2 = rs1 < rs2; (p2) rd = rd + rs1` — predicated update.
    Pred { rd: u8, rs1: u8, rs2: u8 },
}

/// Operand registers r2..=r9; results also go to r2..=r9.
fn reg(i: u8) -> Reg {
    Reg::int(2 + (i % 8))
}

const ALU_OPS: [Op; 4] = [Op::Add, Op::Sub, Op::Xor, Op::Or];
const WINDOW_BASE: u64 = 0x8000;
const WINDOW_WORDS: u64 = 64;

fn arb_body_inst() -> impl Strategy<Value = BodyInst> {
    prop_oneof![
        (0u8..4, 0u8..8, 0u8..8, 0u8..8).prop_map(|(op_idx, rd, rs1, rs2)| BodyInst::Alu {
            op_idx,
            rd,
            rs1,
            rs2
        }),
        (0u8..8, 0u8..8, any::<i8>()).prop_map(|(rd, rs, imm)| BodyInst::AddImm { rd, rs, imm }),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(rd, rs1, rs2)| BodyInst::Mul { rd, rs1, rs2 }),
        (0u8..8, 0u8..8).prop_map(|(rd, rs)| BodyInst::Load { rd, rs }),
        (0u8..8, 0u8..8).prop_map(|(rs, rs2)| BodyInst::Store { rs, rs2 }),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(rd, rs1, rs2)| BodyInst::Pred { rd, rs1, rs2 }),
    ]
}

/// Builds a program: init registers, run `trips` iterations of the random
/// body inside a counted loop, halt. The address mask keeps all memory
/// traffic inside a small window. r20 holds the window base, r21 the mask.
fn build_program(body: &[BodyInst], trips: u8) -> Program {
    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    let b2 = p.add_block();
    for i in 0..8u8 {
        p.push(b0, Inst::new(Op::MovImm).dst(reg(i)).imm(3 + 7 * i as i64));
    }
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(20)).imm(WINDOW_BASE as i64));
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(21)).imm(((WINDOW_WORDS - 1) * 8) as i64));
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(22)).imm(trips as i64 + 1));
    for bi in body {
        match bi {
            BodyInst::Alu { op_idx, rd, rs1, rs2 } => p.push(
                b1,
                Inst::new(ALU_OPS[*op_idx as usize]).dst(reg(*rd)).src(reg(*rs1)).src(reg(*rs2)),
            ),
            BodyInst::AddImm { rd, rs, imm } => {
                p.push(b1, Inst::new(Op::AddImm).dst(reg(*rd)).src(reg(*rs)).imm(*imm as i64))
            }
            BodyInst::Mul { rd, rs1, rs2 } => {
                p.push(b1, Inst::new(Op::Mul).dst(reg(*rd)).src(reg(*rs1)).src(reg(*rs2)))
            }
            BodyInst::Load { rd, rs } => {
                // r23 = (rs & mask) + window base; rd = [r23]
                p.push(b1, Inst::new(Op::And).dst(Reg::int(23)).src(reg(*rs)).src(Reg::int(21)));
                p.push(
                    b1,
                    Inst::new(Op::Add).dst(Reg::int(23)).src(Reg::int(23)).src(Reg::int(20)),
                );
                p.push(b1, Inst::new(Op::Load).dst(reg(*rd)).src(Reg::int(23)));
            }
            BodyInst::Store { rs, rs2 } => {
                p.push(b1, Inst::new(Op::And).dst(Reg::int(24)).src(reg(*rs)).src(Reg::int(21)));
                p.push(
                    b1,
                    Inst::new(Op::Add).dst(Reg::int(24)).src(Reg::int(24)).src(Reg::int(20)),
                );
                p.push(b1, Inst::new(Op::Store).src(Reg::int(24)).src(reg(*rs2)));
            }
            BodyInst::Pred { rd, rs1, rs2 } => {
                p.push(b1, Inst::new(Op::CmpLt).dst(Reg::pred(2)).src(reg(*rs1)).src(reg(*rs2)));
                p.push(
                    b1,
                    Inst::new(Op::Add).dst(reg(*rd)).src(reg(*rd)).src(reg(*rs1)).qp(Reg::pred(2)),
                );
            }
        }
    }
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(22)).src(Reg::int(22)).imm(-1));
    p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(22)).src(Reg::int(0)));
    p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
    p.push(b2, Inst::new(Op::Halt));
    p
}

fn initial_memory() -> MemoryImage {
    let mut m = MemoryImage::new();
    for i in 0..WINDOW_WORDS {
        m.store(WINDOW_BASE + i * 8, i.wrapping_mul(0x9E37_79B9) ^ 0xABCD);
    }
    m
}

fn all_models(machine: MachineConfig) -> Vec<(&'static str, Box<dyn ExecutionModel>)> {
    vec![
        ("inorder", Box::new(InOrder::new(machine))),
        ("runahead", Box::new(Runahead::new(machine))),
        ("ooo", Box::new(OutOfOrder::new(machine))),
        ("ooo-real", Box::new(OutOfOrder::realistic(machine))),
        ("mp", Box::new(Multipass::new(machine))),
        (
            "mp-noregroup",
            Box::new(Multipass::with_config(MultipassConfig::without_regrouping(machine))),
        ),
        (
            "mp-norestart",
            Box::new(Multipass::with_config(MultipassConfig::without_restart(machine))),
        ),
    ]
}

/// Runs every model on the case and returns a first-divergence triage
/// report (`ff-debug`) for each model that disagrees with the interpreter.
fn divergence_reports(golden: &ArchState, case: &SimCase<'_>) -> Vec<String> {
    let machine = MachineConfig::itanium2_base();
    let mut failures = Vec::new();
    for (name, mut model) in all_models(machine) {
        let r = model.run(case);
        if !r.final_state.semantically_eq(golden) || r.stats.breakdown.total() != r.stats.cycles {
            let report = flea_flicker::debug::compare_model(&mut *model, case);
            failures.push(format!("model {name}:\n{report}"));
        }
    }
    failures
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every model agrees with the interpreter on arbitrary compiled loops.
    #[test]
    fn all_models_agree_on_random_programs(
        body in proptest::collection::vec(arb_body_inst(), 1..14),
        trips in 1u8..12,
    ) {
        let raw = build_program(&body, trips);
        let program = compile(&raw, &CompilerOptions::default());
        prop_assert!(program.validate().is_ok());
        let mem = initial_memory();

        let mut s = ArchState::new();
        s.mem = mem.clone();
        let mut interp = Interpreter::with_state(&program, s);
        interp.run(5_000_000).expect("interpreter must finish");
        prop_assert!(interp.is_halted());
        let golden = interp.into_state();

        let case = SimCase::new(&program, mem);
        let failures = divergence_reports(&golden, &case);
        prop_assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    /// Unrolled compilation preserves memory semantics, and every model
    /// agrees with the interpreter on the unrolled program (which contains
    /// control shapes — guard branches, unconditional back edges, remainder
    /// loops — that the plain generator never emits).
    #[test]
    fn all_models_agree_on_unrolled_programs(
        body in proptest::collection::vec(arb_body_inst(), 1..10),
        trips in 1u8..12,
    ) {
        let raw = build_program(&body, trips);
        let options = CompilerOptions { unroll: Some(2), ..CompilerOptions::default() };
        let program = compile(&raw, &options);
        prop_assert!(program.validate().is_ok());
        prop_assert!(
            flea_flicker::compiler::verify_schedule(&program).is_ok(),
            "unrolled schedule violates EPIC group rules"
        );
        let mem = initial_memory();

        // Memory semantics match the raw program (registers may differ in
        // compiler-claimed scratch and renamed dead temporaries).
        let mut s_raw = ArchState::new();
        s_raw.mem = mem.clone();
        let mut i_raw = Interpreter::with_state(&raw, s_raw);
        i_raw.run(5_000_000).expect("raw finishes");
        let mut s_u = ArchState::new();
        s_u.mem = mem.clone();
        let mut i_u = Interpreter::with_state(&program, s_u);
        i_u.run(5_000_000).expect("unrolled finishes");
        prop_assert!(i_raw.state().mem.semantically_eq(&i_u.state().mem));
        let golden = i_u.into_state();

        let case = SimCase::new(&program, mem);
        let failures = divergence_reports(&golden, &case);
        prop_assert!(failures.is_empty(), "unrolled: {}", failures.join("\n"));
    }

    /// The assembler round-trips every program the generator can produce.
    #[test]
    fn assembly_round_trips(
        body in proptest::collection::vec(arb_body_inst(), 1..20),
        trips in 1u8..10,
    ) {
        use flea_flicker::isa::asm::parse_program;
        let raw = build_program(&body, trips);
        let compiled = compile(&raw, &CompilerOptions::default());
        for p in [&raw, &compiled] {
            let text = p.to_string();
            let again = parse_program(&text)
                .map_err(|e| TestCaseError::fail(format!("reassembly failed: {e}")))?;
            prop_assert_eq!(p, &again);
        }
    }

    /// Compilation itself preserves semantics for random bodies.
    #[test]
    fn compilation_preserves_semantics(
        body in proptest::collection::vec(arb_body_inst(), 1..20),
        trips in 1u8..10,
    ) {
        let raw = build_program(&body, trips);
        let compiled = compile(&raw, &CompilerOptions::default());
        let mem = initial_memory();

        let mut s1 = ArchState::new();
        s1.mem = mem.clone();
        let mut i1 = Interpreter::with_state(&raw, s1);
        i1.run(5_000_000).expect("raw program finishes");

        let mut s2 = ArchState::new();
        s2.mem = mem;
        let mut i2 = Interpreter::with_state(&compiled, s2);
        i2.run(5_000_000).expect("compiled program finishes");

        prop_assert!(i1.state().semantically_eq(i2.state()));
        // Retirement counts may differ: the compiler legitimately inserts
        // RESTART markers into critical loop SCCs, which are architectural
        // no-ops but occupy dynamic instruction slots.
        prop_assert!(i2.retired() >= i1.retired());
    }
}

/// Runs a fixed kernel through the compiler and asserts every model agrees
/// with the interpreter, printing ff-debug triage reports on failure.
fn check_regression_kernel(body: &[BodyInst], trips: u8) {
    let raw = build_program(body, trips);
    let program = compile(&raw, &CompilerOptions::default());
    let mem = initial_memory();

    let mut s = ArchState::new();
    s.mem = mem.clone();
    let mut interp = Interpreter::with_state(&program, s);
    interp.run(5_000_000).expect("interpreter must finish");
    assert!(interp.is_halted());
    let golden = interp.into_state();

    let case = SimCase::new(&program, mem);
    let failures = divergence_reports(&golden, &case);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Shrunk kernel from the checked-in proptest regression seed
/// (`tests/random_programs.proptest-regressions`, cc b6bda37c…): a
/// multi-cycle multiply feeding a load-address chain under WAW pressure.
#[test]
fn regression_shrunk_kernel_b6bda37c() {
    check_regression_kernel(
        &[
            BodyInst::AddImm { rd: 7, rs: 1, imm: 0 },
            BodyInst::Load { rd: 1, rs: 4 },
            BodyInst::Mul { rd: 2, rs1: 0, rs2: 7 },
            BodyInst::Alu { op_idx: 0, rd: 4, rs1: 3, rs2: 1 },
            BodyInst::Mul { rd: 5, rs1: 0, rs2: 7 },
        ],
        1,
    );
}

/// Stale ASC forward across a deferred store (fuzz seed 6745): in one
/// advance pass an older store's ASC entry forwarded to a younger load
/// even though an intervening store with an unknown address had been
/// deferred between them. The forwarded value must carry an S-bit in that
/// case so the rally-mode value check catches the aliasing store.
#[test]
fn regression_stale_asc_forward_across_deferred_store() {
    check_regression_kernel(
        &[
            BodyInst::Load { rd: 0, rs: 2 },
            BodyInst::Store { rs: 3, rs2: 1 },
            BodyInst::Load { rd: 3, rs: 7 },
            BodyInst::Store { rs: 0, rs2: 5 },
            BodyInst::Store { rs: 7, rs2: 7 },
            BodyInst::Load { rd: 0, rs: 0 },
            BodyInst::Pred { rd: 2, rs1: 6, rs2: 0 },
            BodyInst::Load { rd: 4, rs: 5 },
            BodyInst::Load { rd: 5, rs: 0 },
            BodyInst::AddImm { rd: 4, rs: 1, imm: 85 },
            BodyInst::Pred { rd: 0, rs1: 2, rs2: 1 },
            BodyInst::Store { rs: 1, rs2: 4 },
            BodyInst::Alu { op_idx: 3, rd: 1, rs1: 4, rs2: 5 },
        ],
        9,
    );
}
