//! Runs every execution model on every workload (test scale) and prints a
//! Figure 6-like comparison: cycles, speedup over in-order, and the
//! four-way stall breakdown.
//!
//! ```sh
//! cargo run --release --example compare_models
//! ```

use flea_flicker::baselines::{InOrder, OutOfOrder, Runahead};
use flea_flicker::engine::{ExecutionModel, MachineConfig, RunResult, SimCase};
use flea_flicker::multipass::Multipass;
use flea_flicker::workloads::{Scale, Workload};

fn main() {
    let machine = MachineConfig::itanium2_base();
    println!(
        "{:<8} {:<10} {:>10} {:>8}   {:>6} {:>6} {:>6} {:>6}",
        "bench", "model", "cycles", "speedup", "exec", "front", "other", "load"
    );
    for w in Workload::all(Scale::Test) {
        let case = SimCase::new(&w.program, w.mem.clone());
        let base = InOrder::new(machine).run(&case);
        let runs: Vec<(&str, RunResult)> = vec![
            ("inorder", base.clone()),
            ("runahead", Runahead::new(machine).run(&case)),
            ("MP", Multipass::new(machine).run(&case)),
            ("OOO", OutOfOrder::new(machine).run(&case)),
            ("OOO-real", OutOfOrder::realistic(machine).run(&case)),
        ];
        for (name, r) in &runs {
            assert!(
                base.final_state.semantically_eq(&r.final_state),
                "{} diverges on {}",
                name,
                w.name
            );
            let n = r.stats.cycles as f64;
            println!(
                "{:<8} {:<10} {:>10} {:>7.2}x   {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%",
                w.name,
                name,
                r.stats.cycles,
                base.stats.cycles as f64 / n,
                100.0 * r.stats.breakdown.execution as f64 / n,
                100.0 * r.stats.breakdown.front_end as f64 / n,
                100.0 * r.stats.breakdown.other as f64 / n,
                100.0 * r.stats.breakdown.load as f64 / n,
            );
        }
        println!();
    }
}
