//! Opcodes, functional-unit classes, and static latencies.
//!
//! The opcode set is deliberately compact but covers every behaviour the
//! paper's evaluation exercises: single-cycle ALU work, multi-cycle integer
//! multiply/divide (the "other stalls" of Figure 6), floating-point
//! arithmetic, loads and stores with base+displacement addressing,
//! predicate-writing compares, predicated branches, and the multipass
//! `RESTART` marker (paper §3.3).

use std::fmt;

use crate::program::BlockId;

/// Functional-unit class an instruction issues to.
///
/// The distribution mirrors the Itanium 2 issue ports used in the paper's
/// Table 2 ("6-issue, Itanium 2 FU distribution"): memory ports also execute
/// simple ALU operations (Itanium "A-type" instructions), the F ports
/// execute floating-point work and integer multiply/divide, and branches use
/// dedicated B ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Memory port (loads/stores; can also execute A-type ALU operations).
    Mem,
    /// Integer ALU port.
    Int,
    /// Floating-point port (also integer multiply/divide).
    Fp,
    /// Branch port.
    Branch,
}

/// Operation performed by an [`crate::Inst`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    // ---- integer ALU (A-type: issue on M or I ports) ----
    /// `dst = src0 + src1`
    Add,
    /// `dst = src0 - src1`
    Sub,
    /// `dst = src0 & src1`
    And,
    /// `dst = src0 | src1`
    Or,
    /// `dst = src0 ^ src1`
    Xor,
    /// `dst = src0 << (imm & 63)`
    Shl,
    /// `dst = src0 >> (imm & 63)` (logical)
    Shr,
    /// `dst = src0 + imm`
    AddImm,
    /// `dst = imm`
    MovImm,
    // ---- predicate-writing compares (I ports) ----
    /// `dst(pred) = (src0 == src1)`
    CmpEq,
    /// `dst(pred) = (src0 < src1)` signed
    CmpLt,
    /// `dst(pred) = (src0 != src1)`
    CmpNe,
    // ---- multi-cycle integer (F ports, like Itanium xma) ----
    /// `dst = src0 * src1`, multi-cycle
    Mul,
    /// `dst = src0 / src1` (0 if divisor 0), long latency, unpipelined
    Div,
    // ---- floating point (F ports) ----
    /// `dst = src0 +. src1`
    FAdd,
    /// `dst = src0 *. src1`
    FMul,
    /// `dst = src0 /. src1`, long latency, unpipelined
    FDiv,
    /// `dst(int) = src0(fp) as i64` — fp-to-int move/convert
    FCvt,
    // ---- memory (M ports) ----
    /// `dst = mem[src0 + imm]` (8-byte word)
    Load,
    /// `dst(fp) = mem[src0 + imm]` (8-byte word, into fp file)
    LoadFp,
    /// `mem[src0 + imm] = src1`
    Store,
    // ---- control (B ports) ----
    /// Branch to `target` if the qualifying predicate is true; fall through
    /// otherwise. Unconditional when qualified by `p0`.
    Br {
        /// Destination basic block.
        target: BlockId,
    },
    /// Terminates the program.
    Halt,
    // ---- multipass support ----
    /// Compiler-inserted advance-restart marker (paper §3.3). Consumes
    /// `src0`; when its operand is unready during advance execution the
    /// multipass pipeline restarts the advance pass. Architecturally a no-op.
    Restart,
    /// No operation (scheduling filler).
    Nop,
}

impl Op {
    /// The functional-unit class this operation issues to.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Op::Add
            | Op::Sub
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::AddImm
            | Op::MovImm
            | Op::CmpEq
            | Op::CmpLt
            | Op::CmpNe
            | Op::Nop
            | Op::Restart => FuClass::Int,
            Op::Mul | Op::Div | Op::FAdd | Op::FMul | Op::FDiv | Op::FCvt => FuClass::Fp,
            Op::Load | Op::LoadFp | Op::Store => FuClass::Mem,
            Op::Br { .. } | Op::Halt => FuClass::Branch,
        }
    }

    /// Whether the op is "A-type": an ALU operation that may issue on either
    /// an M or an I port (Itanium 2 convention).
    pub fn is_a_type(&self) -> bool {
        matches!(
            self,
            Op::Add
                | Op::Sub
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::AddImm
                | Op::MovImm
                | Op::Nop
                | Op::Restart
        )
    }

    /// Static execution latency in cycles, *excluding* memory-hierarchy time
    /// for loads (a load's total latency is this value for an L1 hit; misses
    /// add hierarchy latency from `ff-mem`).
    pub fn latency(&self) -> u32 {
        match self {
            Op::Mul => 5,
            Op::Div | Op::FDiv => 20,
            Op::FAdd | Op::FMul => 4,
            Op::FCvt => 2,
            _ => 1,
        }
    }

    /// Whether the op occupies its functional unit for its whole latency
    /// (unpipelined). True only for divides, mirroring iterative dividers.
    pub fn is_unpipelined(&self) -> bool {
        matches!(self, Op::Div | Op::FDiv)
    }

    /// Whether this op reads memory.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load | Op::LoadFp)
    }

    /// Whether this op writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store)
    }

    /// Whether this op is a control transfer (branch or halt).
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::Br { .. } | Op::Halt)
    }

    /// Whether the op has non-unit latency (a "multi-cycle" op for the
    /// purposes of Figure 6's *other* stall category).
    pub fn is_multicycle(&self) -> bool {
        self.latency() > 1
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Br { target } => write!(f, "br B{}", target.0),
            other => {
                let s = format!("{other:?}").to_lowercase();
                write!(f, "{s}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_classes() {
        assert_eq!(Op::Add.fu_class(), FuClass::Int);
        assert_eq!(Op::Mul.fu_class(), FuClass::Fp);
        assert_eq!(Op::Load.fu_class(), FuClass::Mem);
        assert_eq!(Op::Br { target: BlockId(0) }.fu_class(), FuClass::Branch);
    }

    #[test]
    fn latencies_follow_table() {
        assert_eq!(Op::Add.latency(), 1);
        assert_eq!(Op::Load.latency(), 1); // L1 hit per Table 2
        assert_eq!(Op::Mul.latency(), 5);
        assert_eq!(Op::Div.latency(), 20);
        assert_eq!(Op::FAdd.latency(), 4);
    }

    #[test]
    fn a_type_issues_on_mem_or_int() {
        assert!(Op::Add.is_a_type());
        assert!(!Op::CmpEq.is_a_type());
        assert!(!Op::Load.is_a_type());
        assert!(!Op::Mul.is_a_type());
    }

    #[test]
    fn classification_predicates() {
        assert!(Op::Load.is_load());
        assert!(Op::LoadFp.is_load());
        assert!(!Op::Store.is_load());
        assert!(Op::Store.is_store());
        assert!(Op::Br { target: BlockId(3) }.is_branch());
        assert!(Op::Halt.is_branch());
        assert!(Op::Div.is_unpipelined());
        assert!(!Op::Mul.is_unpipelined());
        assert!(Op::Mul.is_multicycle());
        assert!(!Op::Add.is_multicycle());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Op::AddImm.to_string(), "addimm");
        assert_eq!(Op::Br { target: BlockId(7) }.to_string(), "br B7");
    }
}
