//! Benchmark harness for the flea-flicker reproduction.
//!
//! Each bench target (`cargo bench -p ff-bench`) regenerates one table or
//! figure of the paper:
//!
//! * `table1_power` — Table 1 power ratios
//! * `table2_config` — Table 2 machine configuration
//! * `figure6_cycles` — Figure 6 normalized cycle breakdown
//! * `figure7_hierarchies` — Figure 7 cache-hierarchy sweep
//! * `figure8_ablation` — Figure 8 regrouping/restart ablation
//! * `realistic_ooo` — §5.2 decentralized-OOO comparison
//! * `runahead_compare` — §5.4 Dundas–Mudge comparison
//! * `sim_throughput` — steady-state simulator throughput (cycles/sec and
//!   insts/sec per model x kernel x tick mode), written to
//!   `BENCH_<git-describe>.json` and gated against `BENCH_main.json` by
//!   the CI `perf-gate` job (see [`throughput`])
//!
//! Set `FF_SCALE=test` to run the figure benches on miniature workloads
//! (useful for CI); the default is the paper-scale configuration.

pub mod throughput;

/// Reads the workload scale from `FF_SCALE` (`test` or `paper`, default
/// `paper`).
pub fn scale_from_env() -> ff_workloads::Scale {
    match std::env::var("FF_SCALE").as_deref() {
        Ok("test") => ff_workloads::Scale::Test,
        _ => ff_workloads::Scale::Paper,
    }
}
