use ff_baselines::{InOrder, OutOfOrder, Runahead};
use ff_engine::{
    CycleObs, ExecutionModel, MachineConfig, PipelineProbe, RetireMode, RunResult, SimCase,
};
use ff_multipass::{Multipass, MultipassConfig};
use ff_workloads::{Scale, Workload};

use crate::{check_model, demo, detected, fault, run_faulted, FaultClass, FaultInjector};
use crate::{Sentinel, SentinelSuite, Violation, MAX_VIOLATIONS};

fn all_models() -> Vec<Box<dyn ExecutionModel>> {
    let m = MachineConfig::default();
    vec![
        Box::new(InOrder::new(m)),
        Box::new(Runahead::new(m)),
        Box::new(OutOfOrder::new(m)),
        Box::new(OutOfOrder::realistic(m)),
        Box::new(Multipass::new(m)),
        Box::new(Multipass::with_config(MultipassConfig::without_regrouping(m))),
        Box::new(Multipass::with_config(MultipassConfig::without_restart(m))),
    ]
}

#[test]
fn clean_runs_report_zero_violations_across_all_models() {
    // A representative subset of workloads keeps this test quick; the
    // `ff-sentinel clean` binary sweeps all twelve in CI.
    for bench in ["mcf", "gzip", "art"] {
        let w = Workload::by_name(bench, Scale::Test).unwrap();
        for model in &mut all_models() {
            let report = check_model(model.as_mut(), &w.sim_case());
            assert!(
                report.outcome.is_ok(),
                "{} / {bench}: {:?}",
                model.name(),
                report.outcome.err()
            );
            assert!(
                report.violations.is_empty(),
                "{} / {bench}: {:?}",
                model.name(),
                report.violations
            );
        }
    }
}

#[test]
fn demo_kernels_are_clean_without_faults() {
    for (p, mem) in [demo::chase(32), demo::forwarding()] {
        let case = SimCase::new(&p, mem);
        let mut model = Multipass::new(MachineConfig::default());
        let report = check_model(&mut model, &case);
        assert!(report.is_clean(), "{:?}", report.violations);
    }
}

#[test]
fn forwarding_kernel_exercises_a_speculative_asc_forward() {
    // The stale-asc fault site must exist in the clean run: at least one
    // ASC forward with the S-bit set.
    struct CountForwards(u64);
    impl PipelineProbe for CountForwards {
        fn on_asc_forward(&mut self, obs: &ff_engine::AscForwardObs) {
            if obs.s_bit {
                self.0 += 1;
            }
        }
    }
    let (p, mem) = demo::forwarding();
    let case = SimCase::new(&p, mem);
    let mut probe = CountForwards(0);
    let mut model = Multipass::new(MachineConfig::default());
    model
        .try_run_probed(&case, &mut ff_engine::NullRetireHook, &mut probe)
        .expect("forwarding kernel must complete");
    assert!(probe.0 > 0, "no S-bit ASC forward — the stale-asc fault site is unreachable");
}

#[test]
fn every_fault_class_is_detected_at_index_zero() {
    for class in FaultClass::ALL {
        let report = run_faulted(class, 0);
        assert!(
            detected(class, &report),
            "{}: expected {:?} to fire, got {:?} (outcome {:?})",
            class.name(),
            class.expected_sentinels(),
            report.violations,
            report.outcome.as_ref().err()
        );
    }
}

#[test]
fn seeded_fault_sites_are_detected_whenever_they_fire() {
    let mut inj = FaultInjector::new(7);
    for _ in 0..12 {
        let (class, index) = inj.next_fault();
        let report = run_faulted(class, index);
        if report.is_clean() {
            continue; // site past the end of the run's event stream
        }
        assert!(
            detected(class, &report),
            "{}[{index}]: perturbed run not caught by {:?}: {:?}",
            class.name(),
            class.expected_sentinels(),
            report.violations
        );
    }
}

#[test]
fn fault_injector_is_deterministic() {
    let a: Vec<_> = (0..16)
        .map({
            let mut i = FaultInjector::new(42);
            move |_| i.next_fault()
        })
        .collect();
    let b: Vec<_> = (0..16)
        .map({
            let mut i = FaultInjector::new(42);
            move |_| i.next_fault()
        })
        .collect();
    assert_eq!(a, b);
    let c: Vec<_> = (0..16)
        .map({
            let mut i = FaultInjector::new(43);
            move |_| i.next_fault()
        })
        .collect();
    assert_ne!(a, c, "different seeds should pick different campaigns");
}

#[test]
fn fault_class_names_round_trip() {
    for class in FaultClass::ALL {
        assert_eq!(FaultClass::parse(class.name()), Some(class));
    }
    assert_eq!(FaultClass::parse("no-such-fault"), None);
}

#[test]
fn dropped_wakeup_is_caught_within_the_latency_slack() {
    // The scoreboard sentinel fires the first cycle the wedged register is
    // observable — well before the run's watchdog aborts it.
    let report = run_faulted(FaultClass::DroppedWakeup, 0);
    assert!(report.outcome.is_err(), "a dropped wakeup must wedge the run");
    let first = report
        .violations
        .iter()
        .find(|v| v.sentinel == "scoreboard-srf")
        .expect("scoreboard sentinel must fire");
    assert!(
        first.cycle < crate::checkers::LATENCY_SLACK + 1_000,
        "detection at cycle {} is too late",
        first.cycle
    );
}

#[test]
fn dropped_ready_insert_is_caught_within_the_latency_slack() {
    // A wakeup insertion lost on an exec writeback wedges the destination
    // register's scoreboard entry; the scoreboard sentinel must see the
    // impossible drain horizon immediately, not at the watchdog.
    let report = run_faulted(FaultClass::DroppedReadyInsert, 0);
    let first = report
        .violations
        .iter()
        .find(|v| v.sentinel == "scoreboard-srf")
        .expect("scoreboard sentinel must fire on a dropped ready insertion");
    assert!(
        first.cycle < crate::checkers::LATENCY_SLACK + 1_000,
        "detection at cycle {} is too late",
        first.cycle
    );
}

#[test]
fn synthetic_violations_respect_the_suite_cap() {
    struct AlwaysFire;
    impl Sentinel for AlwaysFire {
        fn name(&self) -> &'static str {
            "always-fire"
        }
        fn on_cycle(&mut self, obs: &CycleObs, v: &mut crate::Reporter<'_>) {
            v.report(obs.cycle, "synthetic".to_string());
        }
    }
    let mut suite = SentinelSuite::new();
    suite.add(AlwaysFire);
    let obs = CycleObs {
        cycle: 0,
        mode: RetireMode::Architectural,
        trigger: 0,
        peek: 0,
        peek_high: 0,
        deq: 0,
        srf_abits: 0,
        asc_live: 0,
        asc_capacity: 64,
        asc_assoc_ok: true,
        smaq_live: 0,
        smaq_capacity: 128,
        sb_drain: 0,
    };
    for _ in 0..(MAX_VIOLATIONS + 10) {
        suite.on_cycle(&obs);
    }
    assert_eq!(suite.violations().len(), MAX_VIOLATIONS);
}

#[test]
fn accounting_sentinel_flags_unbalanced_counters() {
    use crate::checkers::AccountingSentinel;
    let (p, mem) = demo::chase(4);
    let case = SimCase::new(&p, mem);
    let mut model = Multipass::new(MachineConfig::default());
    let mut good = model.run(&case);

    fn audit(result: &RunResult) -> Vec<Violation> {
        let mut suite = SentinelSuite::new();
        suite.add(AccountingSentinel::new());
        suite.on_run_end(result);
        suite.into_violations()
    }

    assert!(audit(&good).is_empty());
    good.stats.cycles += 1; // breakdown no longer balances
    let v = audit(&good);
    assert!(!v.is_empty());
    assert!(v[0].message.contains("breakdown"), "{}", v[0].message);
}

#[test]
fn violation_display_names_the_sentinel_and_cycle() {
    let v = Violation { sentinel: "asc", cycle: 123, message: "boom".to_string() };
    let s = v.to_string();
    assert!(s.contains("[asc]"), "{s}");
    assert!(s.contains("cycle 123"), "{s}");
    assert!(s.contains("boom"), "{s}");
}

#[test]
fn faulted_run_budget_allows_warped_latency_to_complete() {
    // A warped latency stalls ~99k cycles but must still complete inside
    // the fault budget so the MSHR/accounting end-of-run checks run.
    let report = run_faulted(FaultClass::WarpedCacheLatency, 0);
    assert!(
        report.outcome.is_ok(),
        "warped run should complete within {} cycles: {:?}",
        fault::FAULT_CYCLE_BUDGET,
        report.outcome.err()
    );
}
