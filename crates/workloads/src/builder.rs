//! Shared construction helpers for the synthetic kernels.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use ff_isa::MemoryImage;

/// Deterministic RNG for a kernel, derived from its name and scale tag.
pub fn kernel_rng(name: &str, scale_tag: u64) -> StdRng {
    let mut seed = 0xF1EAF11C_u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(seed ^ (scale_tag << 32))
}

/// Lays out a singly linked list of `nodes` nodes of `node_bytes` bytes in
/// a randomly permuted order within `[base, base + nodes * node_bytes)`,
/// so that following `next` pointers defeats spatial locality. Each node's
/// word 0 holds the next-node address (0 terminates); the remaining words
/// are filled from `payload`.
///
/// Returns the address of the first node.
pub fn shuffled_chain(
    rng: &mut StdRng,
    mem: &mut MemoryImage,
    base: u64,
    nodes: u64,
    node_bytes: u64,
    payload: impl FnMut(&mut StdRng, u64) -> u64,
) -> u64 {
    let mut order: Vec<u64> = (0..nodes).collect();
    order.shuffle(rng);
    link_chain(rng, mem, base, node_bytes, &order, false, payload)
}

/// Circular variant of [`shuffled_chain`]: the last node links back to the
/// first, so the traversal can be driven by an iteration counter and lap
/// the structure repeatedly (warm-cache behaviour after the first lap, as
/// in a real benchmark's outer loop).
pub fn shuffled_ring(
    rng: &mut StdRng,
    mem: &mut MemoryImage,
    base: u64,
    nodes: u64,
    node_bytes: u64,
    payload: impl FnMut(&mut StdRng, u64) -> u64,
) -> u64 {
    let mut order: Vec<u64> = (0..nodes).collect();
    order.shuffle(rng);
    link_chain(rng, mem, base, node_bytes, &order, true, payload)
}

fn link_chain(
    rng: &mut StdRng,
    mem: &mut MemoryImage,
    base: u64,
    node_bytes: u64,
    visit: &[u64],
    circular: bool,
    mut payload: impl FnMut(&mut StdRng, u64) -> u64,
) -> u64 {
    assert!(node_bytes.is_multiple_of(8) && node_bytes >= 8 && !visit.is_empty());
    let addr_of = |node: u64| base + node * node_bytes;
    for (w, &node) in visit.iter().enumerate() {
        let a = addr_of(node);
        let next = if w + 1 == visit.len() {
            if circular {
                addr_of(visit[0])
            } else {
                0
            }
        } else {
            addr_of(visit[w + 1])
        };
        mem.store(a, next);
        for k in 1..(node_bytes / 8) {
            let v = payload(rng, k);
            mem.store(a + k * 8, v);
        }
    }
    addr_of(visit[0])
}

/// Fills `words` consecutive 64-bit words starting at `base` with values
/// from `f`.
pub fn fill_array(
    rng: &mut StdRng,
    mem: &mut MemoryImage,
    base: u64,
    words: u64,
    mut f: impl FnMut(&mut StdRng, u64) -> u64,
) {
    for i in 0..words {
        let v = f(rng, i);
        mem.store(base + i * 8, v);
    }
}

/// Fills an index array with uniformly random values in `0..max`.
pub fn fill_indices(rng: &mut StdRng, mem: &mut MemoryImage, base: u64, count: u64, max: u64) {
    fill_array(rng, mem, base, count, |r, _| r.gen_range(0..max));
}

/// Fills an index array with a hot/cold mixture: with probability
/// `hot_pct`% the index lands in the small hot range `0..hot_max`
/// (cache-resident), otherwise anywhere in `0..cold_max`. This is the knob
/// that sets a gather's cache hit rate.
pub fn fill_indices_mixed(
    rng: &mut StdRng,
    mem: &mut MemoryImage,
    base: u64,
    count: u64,
    hot_max: u64,
    cold_max: u64,
    hot_pct: u32,
) {
    assert!(hot_max <= cold_max && hot_pct <= 100);
    fill_array(rng, mem, base, count, |r, _| {
        if r.gen_range(0..100) < hot_pct {
            r.gen_range(0..hot_max)
        } else {
            r.gen_range(0..cold_max)
        }
    });
}

/// Lays out a linked list with *segment locality*: nodes are grouped into
/// segments of `segment_nodes` consecutive nodes; the traversal walks each
/// segment sequentially (spatial locality within cache lines) but jumps to
/// a randomly ordered next segment. Hop miss rate is therefore roughly one
/// long miss per segment plus short line-crossing misses inside it.
///
/// Returns the address of the first node.
pub fn clustered_chain(
    rng: &mut StdRng,
    mem: &mut MemoryImage,
    base: u64,
    nodes: u64,
    node_bytes: u64,
    segment_nodes: u64,
    payload: impl FnMut(&mut StdRng, u64) -> u64,
) -> u64 {
    let visit = clustered_visit(rng, nodes, segment_nodes);
    link_chain(rng, mem, base, node_bytes, &visit, false, payload)
}

/// Circular variant of [`clustered_chain`] (see [`shuffled_ring`]).
pub fn clustered_ring(
    rng: &mut StdRng,
    mem: &mut MemoryImage,
    base: u64,
    nodes: u64,
    node_bytes: u64,
    segment_nodes: u64,
    payload: impl FnMut(&mut StdRng, u64) -> u64,
) -> u64 {
    let visit = clustered_visit(rng, nodes, segment_nodes);
    link_chain(rng, mem, base, node_bytes, &visit, true, payload)
}

fn clustered_visit(rng: &mut StdRng, nodes: u64, segment_nodes: u64) -> Vec<u64> {
    assert!(segment_nodes >= 1);
    let num_segments = nodes.div_ceil(segment_nodes);
    let mut seg_order: Vec<u64> = (0..num_segments).collect();
    seg_order.shuffle(rng);
    let mut visit: Vec<u64> = Vec::with_capacity(nodes as usize);
    for &seg in &seg_order {
        let start = seg * segment_nodes;
        let end = (start + segment_nodes).min(nodes);
        visit.extend(start..end);
    }
    visit
}

/// Random `f64` in (0, 1) as raw bits, for FP array initialisation.
pub fn random_f64_bits(rng: &mut StdRng) -> u64 {
    let v: f64 = rng.gen_range(0.001..1.0);
    v.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_visits_every_node_once() {
        let mut rng = kernel_rng("test", 0);
        let mut mem = MemoryImage::new();
        let first = shuffled_chain(&mut rng, &mut mem, 0x1000, 50, 16, |_, _| 7);
        let mut seen = 0;
        let mut a = first;
        while a != 0 {
            seen += 1;
            assert_eq!(mem.load(a + 8), 7, "payload word");
            a = mem.load(a);
            assert!(seen <= 50, "cycle detected");
        }
        assert_eq!(seen, 50);
    }

    #[test]
    fn chain_is_permuted() {
        let mut rng = kernel_rng("perm", 0);
        let mut mem = MemoryImage::new();
        let first = shuffled_chain(&mut rng, &mut mem, 0, 64, 8, |_, _| 0);
        // With 64 nodes the probability of the identity permutation is
        // negligible; check that at least one hop goes backwards.
        let mut a = first;
        let mut backwards = false;
        while a != 0 {
            let next = mem.load(a);
            if next != 0 && next < a {
                backwards = true;
            }
            a = next;
        }
        assert!(backwards);
    }

    #[test]
    fn ring_loops_back_to_the_first_node() {
        let mut rng = kernel_rng("ring", 0);
        let mut mem = MemoryImage::new();
        let first = shuffled_ring(&mut rng, &mut mem, 0x1000, 20, 16, |_, _| 0);
        let mut a = first;
        for _ in 0..20 {
            a = mem.load(a);
            assert_ne!(a, 0, "ring must have no null link");
        }
        assert_eq!(a, first, "20 hops should complete one lap");
        // Clustered ring too.
        let first = clustered_ring(&mut rng, &mut mem, 0x80_0000, 24, 32, 8, |_, _| 0);
        let mut a = first;
        for _ in 0..24 {
            a = mem.load(a);
        }
        assert_eq!(a, first);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: u64 = kernel_rng("mcf", 1).gen();
        let b: u64 = kernel_rng("mcf", 1).gen();
        let c: u64 = kernel_rng("gap", 1).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_chain_visits_every_node_with_locality() {
        let mut rng = kernel_rng("cluster", 0);
        let mut mem = MemoryImage::new();
        let first = clustered_chain(&mut rng, &mut mem, 0x1000, 64, 32, 8, |_, _| 1);
        let mut seen = 0;
        let mut a = first;
        let mut sequential_hops = 0;
        let mut prev = None;
        while a != 0 {
            seen += 1;
            if let Some(p) = prev {
                if a == p + 32 {
                    sequential_hops += 1;
                }
            }
            prev = Some(a);
            a = mem.load(a);
            assert!(seen <= 64, "cycle detected");
        }
        assert_eq!(seen, 64);
        // 7 of every 8 hops stay within a segment (sequential).
        assert!(sequential_hops >= 48, "only {sequential_hops} sequential hops");
    }

    #[test]
    fn mixed_indices_prefer_the_hot_range() {
        let mut rng = kernel_rng("mix", 0);
        let mut mem = MemoryImage::new();
        fill_indices_mixed(&mut rng, &mut mem, 0, 1_000, 16, 10_000, 80);
        let hot = (0..1_000).filter(|i| mem.load(i * 8) < 16).count();
        assert!(hot > 700, "only {hot} hot indices");
        assert!(hot < 950, "{hot} — cold range never used?");
    }

    #[test]
    fn indices_respect_bounds() {
        let mut rng = kernel_rng("idx", 0);
        let mut mem = MemoryImage::new();
        fill_indices(&mut rng, &mut mem, 0x100, 100, 32);
        for i in 0..100 {
            assert!(mem.load(0x100 + i * 8) < 32);
        }
    }

    #[test]
    fn f64_bits_round_trip() {
        let mut rng = kernel_rng("fp", 0);
        let v = f64::from_bits(random_f64_bits(&mut rng));
        assert!(v > 0.0 && v < 1.0);
    }
}
