//! Programs, basic blocks, and program counters.
//!
//! A [`Program`] is a list of basic blocks of scheduled EPIC instructions.
//! Control falls through from the end of a block to the next block unless a
//! taken branch redirects it; `Halt` terminates execution. Program counters
//! ([`Pc`]) address an instruction as `(block, index)`.

use std::fmt;

use crate::inst::Inst;
use crate::op::Op;

/// Identifier of a basic block within a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A program counter: basic block plus instruction index within the block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pc {
    /// Basic block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub index: u32,
}

impl Pc {
    /// The entry point of a program: block 0, instruction 0.
    pub const ENTRY: Pc = Pc { block: BlockId(0), index: 0 };

    /// Creates a program counter.
    pub fn new(block: BlockId, index: u32) -> Self {
        Pc { block, index }
    }

    /// A synthetic byte address for this pc, used to index the instruction
    /// cache and branch predictor. Blocks are laid out at 4 KiB strides with
    /// 16 bytes per instruction (an EPIC bundle-third is ~5.3 bytes; we round
    /// up so three instructions occupy one 48-byte bundle-pair region).
    pub fn fetch_address(&self) -> u64 {
        ((self.block.0 as u64) << 12) | ((self.index as u64) * 16)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.index)
    }
}

/// A validation problem found by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// The program has no blocks.
    Empty,
    /// A branch targets a block that does not exist.
    DanglingBranch {
        /// Location of the offending branch.
        at: Pc,
        /// The missing target block.
        target: BlockId,
    },
    /// The final block can fall through past the end of the program without
    /// a terminating `Halt` or unconditional branch.
    FallsOffEnd,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::Empty => write!(f, "program has no blocks"),
            ValidateProgramError::DanglingBranch { at, target } => {
                write!(f, "branch at {at} targets missing block {target}")
            }
            ValidateProgramError::FallsOffEnd => {
                write!(f, "control can fall off the end of the program")
            }
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// A program: an ordered list of basic blocks.
///
/// # Examples
///
/// ```
/// use ff_isa::{Inst, Op, Program, Reg};
/// let mut p = Program::new();
/// let b = p.add_block();
/// p.push(b, Inst::new(Op::Halt));
/// assert!(p.validate().is_ok());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    blocks: Vec<Vec<Inst>>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an empty basic block, returning its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Vec::new());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Appends an instruction to a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist.
    pub fn push(&mut self, block: BlockId, inst: Inst) {
        self.blocks[block.0 as usize].push(inst);
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The instructions of a block, or `None` if the block does not exist.
    pub fn block(&self, id: BlockId) -> Option<&[Inst]> {
        self.blocks.get(id.0 as usize).map(Vec::as_slice)
    }

    /// Mutable access to a block's instructions (used by the scheduler to
    /// set stop bits), or `None` if the block does not exist.
    pub fn block_mut(&mut self, id: BlockId) -> Option<&mut Vec<Inst>> {
        self.blocks.get_mut(id.0 as usize)
    }

    /// The instruction at `pc`, or `None` when `pc` is out of range.
    pub fn inst(&self, pc: Pc) -> Option<&Inst> {
        self.block(pc.block)?.get(pc.index as usize)
    }

    /// The pc following `pc` in straight-line order: the next instruction in
    /// the block, or the first instruction of the next non-empty block.
    /// Returns `None` past the end of the program.
    pub fn next_pc(&self, pc: Pc) -> Option<Pc> {
        let block = self.block(pc.block)?;
        if (pc.index as usize + 1) < block.len() {
            return Some(Pc::new(pc.block, pc.index + 1));
        }
        self.first_pc_from(BlockId(pc.block.0 + 1))
    }

    /// The first instruction at or after the start of `block`, skipping
    /// empty blocks. `None` past the end of the program.
    pub fn first_pc_from(&self, block: BlockId) -> Option<Pc> {
        let mut b = block.0 as usize;
        while b < self.blocks.len() {
            if !self.blocks[b].is_empty() {
                return Some(Pc::new(BlockId(b as u32), 0));
            }
            b += 1;
        }
        None
    }

    /// Total number of static instructions.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Iterates over all `(Pc, &Inst)` pairs in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &Inst)> + '_ {
        self.blocks.iter().enumerate().flat_map(|(b, insts)| {
            insts
                .iter()
                .enumerate()
                .map(move |(i, inst)| (Pc::new(BlockId(b as u32), i as u32), inst))
        })
    }

    /// Checks structural well-formedness: at least one instruction, all
    /// branch targets exist, and control cannot run past the last block.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateProgramError`] found.
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        if self.first_pc_from(BlockId(0)).is_none() {
            return Err(ValidateProgramError::Empty);
        }
        for (pc, inst) in self.iter() {
            if let Op::Br { target } = inst.op() {
                if (target.0 as usize) >= self.blocks.len() {
                    return Err(ValidateProgramError::DanglingBranch { at: pc, target: *target });
                }
            }
        }
        // The last instruction in layout order must not allow fall-through
        // off the end: it must be a Halt or an unconditional branch.
        let last =
            self.iter().last().map(|(_, i)| i).expect("non-empty program has a last instruction");
        let terminates = match last.op() {
            Op::Halt => true,
            Op::Br { .. } => !last.is_predicated(),
            _ => false,
        };
        if !terminates {
            return Err(ValidateProgramError::FallsOffEnd);
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (b, insts) in self.blocks.iter().enumerate() {
            writeln!(f, "B{b}:")?;
            for inst in insts {
                writeln!(f, "    {inst}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn tiny() -> Program {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(1));
        p.push(b0, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
        p.push(b1, Inst::new(Op::Halt));
        p
    }

    #[test]
    fn next_pc_walks_blocks() {
        let p = tiny();
        let a = Pc::ENTRY;
        let b = p.next_pc(a).unwrap();
        assert_eq!(b, Pc::new(BlockId(0), 1));
        let c = p.next_pc(b).unwrap();
        assert_eq!(c, Pc::new(BlockId(1), 0));
        assert_eq!(p.next_pc(c), None);
    }

    #[test]
    fn next_pc_skips_empty_blocks() {
        let mut p = Program::new();
        let b0 = p.add_block();
        let _empty = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::Nop));
        p.push(b2, Inst::new(Op::Halt));
        let next = p.next_pc(Pc::ENTRY).unwrap();
        assert_eq!(next, Pc::new(BlockId(2), 0));
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(Program::new().validate(), Err(ValidateProgramError::Empty));
    }

    #[test]
    fn validate_rejects_dangling_branch() {
        let mut p = Program::new();
        let b0 = p.add_block();
        p.push(b0, Inst::new(Op::Br { target: BlockId(9) }));
        p.push(b0, Inst::new(Op::Halt));
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::DanglingBranch { target: BlockId(9), .. })
        ));
    }

    #[test]
    fn validate_rejects_fallthrough_off_end() {
        let mut p = Program::new();
        let b0 = p.add_block();
        p.push(b0, Inst::new(Op::Nop));
        assert_eq!(p.validate(), Err(ValidateProgramError::FallsOffEnd));
        // A predicated branch can fall through, so it does not terminate.
        let mut q = Program::new();
        let b0 = q.add_block();
        q.push(b0, Inst::new(Op::Br { target: b0 }).qp(Reg::pred(3)));
        assert_eq!(q.validate(), Err(ValidateProgramError::FallsOffEnd));
    }

    #[test]
    fn fetch_addresses_are_distinct_per_block() {
        let a = Pc::new(BlockId(0), 3).fetch_address();
        let b = Pc::new(BlockId(1), 0).fetch_address();
        assert_ne!(a, b);
        assert_eq!(b, 1 << 12);
    }

    #[test]
    fn iter_is_layout_order() {
        let p = tiny();
        let pcs: Vec<_> = p.iter().map(|(pc, _)| pc).collect();
        assert_eq!(
            pcs,
            vec![Pc::new(BlockId(0), 0), Pc::new(BlockId(0), 1), Pc::new(BlockId(1), 0)]
        );
        assert_eq!(p.num_insts(), 3);
    }
}
