//! Cache and hierarchy configuration (paper Table 2 and Figure 7 variants).

use std::fmt;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Load-to-use latency in cycles when this level serves the request.
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two, `assoc >= 1`, and the
    /// capacity is an exact multiple of `assoc * line_bytes`.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u64, latency: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(assoc >= 1, "associativity must be at least 1");
        assert!(
            size_bytes.is_multiple_of(assoc as u64 * line_bytes) && size_bytes > 0,
            "capacity must be a positive multiple of assoc * line size"
        );
        CacheConfig { size_bytes, assoc, line_bytes, latency }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_bytes)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = if self.size_bytes >= 1 << 20 {
            format!("{}MB", self.size_bytes >> 20)
        } else {
            format!("{}KB", self.size_bytes >> 10)
        };
        write!(
            f,
            "{} cycle{}, {}, {}-way, {}B lines",
            self.latency,
            if self.latency == 1 { "" } else { "s" },
            size,
            self.assoc,
            self.line_bytes
        )
    }
}

/// Full memory-hierarchy configuration: L1I, L1D, unified L2 and L3, main
/// memory latency, and the outstanding-miss (MSHR) limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// First-level instruction cache.
    pub l1i: CacheConfig,
    /// First-level data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Unified third-level cache.
    pub l3: CacheConfig,
    /// Main-memory load-to-use latency in cycles.
    pub mm_latency: u32,
    /// Maximum outstanding misses (MSHR entries), Table 2's "16".
    pub max_outstanding: u32,
    /// Human-readable name used in experiment output.
    pub name: &'static str,
}

impl HierarchyConfig {
    /// The paper's base hierarchy (Table 2): 16 KB/4-way/64 B 1-cycle L1s,
    /// 256 KB/8-way/128 B 5-cycle L2, 3 MB/12-way/128 B 12-cycle L3,
    /// 145-cycle main memory, 16 outstanding misses.
    pub fn itanium2_base() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(16 << 10, 4, 64, 1),
            l1d: CacheConfig::new(16 << 10, 4, 64, 1),
            l2: CacheConfig::new(256 << 10, 8, 128, 5),
            l3: CacheConfig::new(3 << 20, 12, 128, 12),
            mm_latency: 145,
            max_outstanding: 16,
            name: "base",
        }
    }

    /// Figure 7 `config1`: the base hierarchy with 200-cycle main memory.
    pub fn config1() -> Self {
        HierarchyConfig { mm_latency: 200, name: "config1", ..Self::itanium2_base() }
    }

    /// Figure 7 `config2`: 1-cycle 8 KB L1, 7-cycle 128 KB L2, 16-cycle
    /// 1.5 MB L3, 200-cycle main memory.
    pub fn config2() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(8 << 10, 4, 64, 1),
            l1d: CacheConfig::new(8 << 10, 4, 64, 1),
            l2: CacheConfig::new(128 << 10, 8, 128, 7),
            l3: CacheConfig::new((3 << 20) / 2, 12, 128, 16),
            mm_latency: 200,
            max_outstanding: 16,
            name: "config2",
        }
    }

    /// All three hierarchies evaluated in Figure 7, in paper order.
    pub fn figure7_sweep() -> [HierarchyConfig; 3] {
        [Self::itanium2_base(), Self::config1(), Self::config2()]
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::itanium2_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table2() {
        let h = HierarchyConfig::itanium2_base();
        assert_eq!(h.l1d.size_bytes, 16 * 1024);
        assert_eq!(h.l1d.assoc, 4);
        assert_eq!(h.l1d.line_bytes, 64);
        assert_eq!(h.l1d.latency, 1);
        assert_eq!(h.l2.size_bytes, 256 * 1024);
        assert_eq!(h.l2.latency, 5);
        assert_eq!(h.l3.size_bytes, 3 * 1024 * 1024);
        assert_eq!(h.l3.latency, 12);
        assert_eq!(h.mm_latency, 145);
        assert_eq!(h.max_outstanding, 16);
    }

    #[test]
    fn num_sets() {
        let c = CacheConfig::new(16 << 10, 4, 64, 1);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    fn config1_only_changes_mm() {
        let base = HierarchyConfig::itanium2_base();
        let c1 = HierarchyConfig::config1();
        assert_eq!(c1.mm_latency, 200);
        assert_eq!(c1.l1d, base.l1d);
        assert_eq!(c1.l3, base.l3);
    }

    #[test]
    fn config2_shrinks_and_slows() {
        let c2 = HierarchyConfig::config2();
        assert_eq!(c2.l1d.size_bytes, 8 * 1024);
        assert_eq!(c2.l2.latency, 7);
        assert_eq!(c2.l3.latency, 16);
        assert_eq!(c2.mm_latency, 200);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_lines() {
        let _ = CacheConfig::new(1024, 2, 48, 1);
    }

    #[test]
    fn display_is_table_like() {
        let c = CacheConfig::new(16 << 10, 4, 64, 1);
        assert_eq!(c.to_string(), "1 cycle, 16KB, 4-way, 64B lines");
    }
}
