//! Regenerates the §5.4 comparison: Dundas–Mudge runahead "only reduced
//! half as many cycles as multipass relative to in-order".

use std::time::Instant;

use ff_bench::scale_from_env;
use ff_experiments::{render, runahead_compare, Suite};

fn main() {
    let scale = scale_from_env();
    let t0 = Instant::now();
    let mut suite = Suite::new(scale);
    let r = runahead_compare(&mut suite);
    println!("=== §5.4: Dundas-Mudge runahead vs multipass ({scale:?} scale) ===\n");
    println!("{}", render::runahead(&r));
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
