//! Counted-loop unrolling with modulo variable renaming.
//!
//! OpenIMPACT's schedules owe much of their quality to cross-iteration ILP
//! (unrolling and modulo scheduling). This pass reproduces the unrolling
//! half for the canonical counted loop shape the workload generators emit:
//!
//! ```text
//! B:  <body>
//!     addimm ctr = ctr #-1
//!     cmpne  p   = ctr r0
//!     (p) br B
//! ```
//!
//! The transformed loop runs `factor` iterations per trip with per-copy
//! temporaries renamed to fresh registers (so independent copies really are
//! independent for the list scheduler), guarded by a `remaining >= factor`
//! check; leftover iterations run in an appended remainder loop that
//! preserves the original body exactly:
//!
//! ```text
//! B:      cmplt p9 = ctr rK        // fewer than `factor` left?
//!         (p9) br B_rem
//!         <body copy 0> ctr -= 1
//!         …
//!         <body copy K-1> ctr -= 1
//!         br B                     // re-test the guard
//! …
//! B_rem:  cmpeq p8 = ctr r0
//!         (p8) br B+1              // done: fall-through successor
//!         <original body> ctr -= 1
//!         br B_rem
//! ```
//!
//! The transformation is conservative: loops that read the loop predicate
//! in the body, write the counter elsewhere, contain other branches, or
//! would exhaust the register files are left untouched. Semantics
//! preservation is enforced by the workspace's interpreter-equivalence
//! oracle and property tests.
//!
//! Like any register-allocating compiler pass, unrolling claims *unused*
//! registers as scratch (the guard constant, guard/exit predicates, and
//! per-copy temporaries); programs must not depend on the final values of
//! registers they never wrote.

use std::collections::HashMap;

use ff_isa::{program::BlockId, Inst, Op, Program, Reg, RegClass};

/// The recognized tail of a counted loop.
struct CountedLoop {
    /// Counter register.
    ctr: Reg,
    /// Loop predicate register (written by the `cmpne`).
    pred: Reg,
    /// Body length (instructions before the `addimm/cmpne/br` tail).
    body_len: usize,
}

fn recognize(block_id: BlockId, block: &[Inst]) -> Option<CountedLoop> {
    if block.len() < 4 {
        return None;
    }
    let n = block.len();
    let br = &block[n - 1];
    let cmp = &block[n - 2];
    let dec = &block[n - 3];
    // (p) br B  — back edge to this very block, qualified.
    let back_edge = matches!(br.op(), Op::Br { target } if *target == block_id);
    if !back_edge || !br.is_predicated() {
        return None;
    }
    let pred = br.qp_reg();
    // cmpne p = ctr r0
    if !matches!(cmp.op(), Op::CmpNe)
        || cmp.dst_reg() != Some(pred)
        || cmp.src_n(1) != Some(Reg::int(0))
    {
        return None;
    }
    let ctr = cmp.src_n(0)?;
    // addimm ctr = ctr #-1
    if !matches!(dec.op(), Op::AddImm)
        || dec.dst_reg() != Some(ctr)
        || dec.src_n(0) != Some(ctr)
        || dec.imm_val() != -1
    {
        return None;
    }
    let body = &block[..n - 3];
    // No other control flow, counter writes, or predicate uses inside.
    for inst in body {
        if inst.op().is_branch() || matches!(inst.op(), Op::Restart) {
            return None;
        }
        if inst.writes() == Some(ctr) {
            return None;
        }
        if inst.reads().any(|r| r == pred) || inst.writes() == Some(pred) {
            return None;
        }
    }
    Some(CountedLoop { ctr, pred, body_len: n - 3 })
}

/// Registers of one class used anywhere in the program.
fn used_mask(program: &Program) -> [Vec<bool>; 3] {
    let mut int = vec![false; ff_isa::NUM_INT_REGS];
    let mut fp = vec![false; ff_isa::NUM_FP_REGS];
    let mut pred = vec![false; ff_isa::NUM_PRED_REGS];
    let mut mark = |r: Reg| match r.class() {
        RegClass::Int => int[r.index() as usize] = true,
        RegClass::Fp => fp[r.index() as usize] = true,
        RegClass::Pred => pred[r.index() as usize] = true,
    };
    for (_, inst) in program.iter() {
        for r in inst.reads() {
            mark(r);
        }
        if let Some(d) = inst.dst_reg() {
            mark(d);
        }
        mark(inst.qp_reg());
    }
    [int, fp, pred]
}

struct FreeRegs {
    masks: [Vec<bool>; 3],
    cursors: [usize; 3],
}

impl FreeRegs {
    fn new(program: &Program) -> Self {
        FreeRegs { masks: used_mask(program), cursors: [1, 0, 1] }
    }

    fn take(&mut self, class: RegClass) -> Option<Reg> {
        let (mask_idx, make): (usize, fn(u8) -> Reg) = match class {
            RegClass::Int => (0, Reg::int),
            RegClass::Fp => (1, Reg::fp),
            RegClass::Pred => (2, Reg::pred),
        };
        let mask = &mut self.masks[mask_idx];
        let cur = &mut self.cursors[mask_idx];
        while *cur < mask.len() {
            if !mask[*cur] {
                mask[*cur] = true;
                let r = make(*cur as u8);
                *cur += 1;
                return Some(r);
            }
            *cur += 1;
        }
        None
    }
}

/// Temporaries of a body that are safe to rename per unrolled copy:
/// registers whose first body access is a write (not live around the back
/// edge) *and* that are never read outside the loop block (dead at loop
/// exit), excluding hardwired ones. Live-out or loop-carried registers stay
/// shared across copies, which is correct (in-order WAW semantics) at the
/// cost of serializing those values.
fn body_temps(program: &Program, loop_block: BlockId, body: &[Inst]) -> Vec<Reg> {
    let mut first_is_write: HashMap<Reg, bool> = HashMap::new();
    for inst in body {
        for r in inst.reads() {
            first_is_write.entry(r).or_insert(false);
        }
        if let Some(d) = inst.writes() {
            first_is_write.entry(d).or_insert(true);
        }
    }
    let read_elsewhere = |r: Reg| {
        program
            .iter()
            .filter(|(pc, _)| pc.block != loop_block)
            .any(|(_, inst)| inst.reads().any(|x| x == r))
    };
    let mut temps: Vec<Reg> = first_is_write
        .into_iter()
        .filter(|&(r, w)| w && !r.is_hardwired() && !read_elsewhere(r))
        .map(|(r, _)| r)
        .collect();
    temps.sort_by_key(|r| r.flat_index());
    temps
}

fn rename(inst: &Inst, map: &HashMap<Reg, Reg>) -> Inst {
    let mut out = Inst::new(*inst.op());
    let qp = inst.qp_reg();
    if inst.is_predicated() {
        out = out.qp(*map.get(&qp).unwrap_or(&qp));
    }
    if let Some(d) = inst.dst_reg() {
        out = out.dst(*map.get(&d).unwrap_or(&d));
    }
    for s in inst.srcs() {
        out = out.src(*map.get(&s).unwrap_or(&s));
    }
    out = out.imm(inst.imm_val());
    if let Some(r) = inst.alias_region() {
        out = out.region(r);
    }
    out
}

/// Unrolls every eligible counted loop in `program` by `factor`.
///
/// Ineligible loops (and everything else) are copied unchanged. The first
/// block of the program is used for guard-constant setup and is therefore
/// never itself unrolled.
///
/// # Panics
///
/// Panics if `factor < 2`.
pub fn unroll_loops(program: &Program, factor: u32) -> Program {
    assert!(factor >= 2, "an unroll factor below 2 is a no-op");
    let mut free = FreeRegs::new(program);

    // Pass 1: decide which blocks unroll and allocate their resources.
    struct Plan {
        lp: CountedLoop,
        k_reg: Reg,
        guard_pred: Reg,
        exit_pred: Reg,
        rem_block: BlockId,
        renames: Vec<HashMap<Reg, Reg>>,
    }
    let mut plans: HashMap<u32, Plan> = HashMap::new();
    let mut next_new_block = program.num_blocks() as u32;
    for b in 1..program.num_blocks() {
        let block_id = BlockId(b as u32);
        let block = program.block(block_id).expect("block exists");
        let Some(lp) = recognize(block_id, block) else { continue };
        let body = &block[..lp.body_len];
        let temps = body_temps(program, block_id, body);
        // Fresh registers: guard constant, two predicates, and one rename
        // set per extra copy.
        let Some(k_reg) = free.take(RegClass::Int) else { continue };
        let (Some(guard_pred), Some(exit_pred)) =
            (free.take(RegClass::Pred), free.take(RegClass::Pred))
        else {
            continue;
        };
        let mut renames = Vec::new();
        let mut ok = true;
        for _ in 1..factor {
            let mut map = HashMap::new();
            for &t in &temps {
                match free.take(t.class()) {
                    Some(fresh) => {
                        map.insert(t, fresh);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
            renames.push(map);
        }
        if !ok {
            continue;
        }
        let rem_block = BlockId(next_new_block);
        next_new_block += 1;
        plans.insert(block_id.0, Plan { lp, k_reg, guard_pred, exit_pred, rem_block, renames });
    }

    if plans.is_empty() {
        return program.clone();
    }

    // Pass 2: emit.
    let mut out = Program::new();
    for b in 0..program.num_blocks() {
        let id = out.add_block();
        let block_id = BlockId(b as u32);
        let block = program.block(block_id).expect("block exists");
        match plans.get(&block_id.0) {
            None => {
                for inst in block {
                    out.push(id, inst.clone());
                }
                // The first block doubles as the guard-constant preheader.
                if b == 0 {
                    for plan in plans.values() {
                        out.push(id, Inst::new(Op::MovImm).dst(plan.k_reg).imm(factor as i64));
                    }
                }
            }
            Some(plan) => {
                let body = &block[..plan.lp.body_len];
                // Guard: fewer than `factor` iterations left -> remainder.
                out.push(
                    id,
                    Inst::new(Op::CmpLt).dst(plan.guard_pred).src(plan.lp.ctr).src(plan.k_reg),
                );
                out.push(id, Inst::new(Op::Br { target: plan.rem_block }).qp(plan.guard_pred));
                // factor copies of the body, temps renamed per copy.
                for k in 0..factor {
                    if k == 0 {
                        for inst in body {
                            out.push(id, inst.clone());
                        }
                    } else {
                        let map = &plan.renames[(k - 1) as usize];
                        for inst in body {
                            out.push(id, rename(inst, map));
                        }
                    }
                    out.push(id, Inst::new(Op::AddImm).dst(plan.lp.ctr).src(plan.lp.ctr).imm(-1));
                }
                // Unconditional back edge: re-test the guard.
                out.push(id, Inst::new(Op::Br { target: block_id }));
            }
        }
    }
    // Remainder loops, appended in plan order.
    let mut ordered: Vec<(&u32, &Plan)> = plans.iter().collect();
    ordered.sort_by_key(|(b, _)| **b);
    for (b, plan) in ordered {
        let rem = out.add_block();
        debug_assert_eq!(rem, plan.rem_block);
        let block = program.block(BlockId(*b)).expect("block exists");
        let body = &block[..plan.lp.body_len];
        // Top-tested: while (ctr != 0) { body; ctr -= 1 }. The loop
        // predicate is rewritten on *every* entry — including a zero-trip
        // remainder — so it always holds the value the original do-while
        // loop would have left architecturally (false at exit).
        out.push(rem, Inst::new(Op::CmpNe).dst(plan.lp.pred).src(plan.lp.ctr).src(Reg::int(0)));
        out.push(rem, Inst::new(Op::CmpEq).dst(plan.exit_pred).src(plan.lp.ctr).src(Reg::int(0)));
        out.push(rem, Inst::new(Op::Br { target: BlockId(b + 1) }).qp(plan.exit_pred));
        for inst in body {
            out.push(rem, inst.clone());
        }
        out.push(rem, Inst::new(Op::AddImm).dst(plan.lp.ctr).src(plan.lp.ctr).imm(-1));
        out.push(rem, Inst::new(Op::Br { target: rem }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::interp::Interpreter;
    use ff_isa::ArchState;

    /// Builds the canonical counted loop summing a memory window.
    fn counted_sum(trips: i64) -> Program {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x1000));
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(trips));
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)));
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)));
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
        p.push(b2, Inst::new(Op::Halt));
        p
    }

    fn run(p: &Program) -> ArchState {
        let mut s = ArchState::new();
        for i in 0..1_000u64 {
            s.mem.store(0x1000 + i * 8, i + 1);
        }
        let mut interp = Interpreter::with_state(p, s);
        interp.run(10_000_000).expect("program finishes");
        assert!(interp.is_halted());
        interp.into_state()
    }

    #[test]
    fn unrolled_loops_preserve_semantics_for_all_trip_counts() {
        // Scratch registers claimed by the pass may differ; the registers
        // the program actually uses — and memory — must match exactly.
        for trips in [1i64, 2, 3, 4, 5, 7, 8, 9, 100, 101] {
            let p = counted_sum(trips);
            for factor in [2u32, 3, 4] {
                let u = unroll_loops(&p, factor);
                assert!(u.validate().is_ok(), "trips={trips} factor={factor}");
                let a = run(&p);
                let b = run(&u);
                // r4 is a dead-at-exit temporary the pass may rename; the
                // live registers (pointer, counter, accumulator) and the
                // loop predicate must match exactly.
                for r in 1..=3u8 {
                    assert_eq!(
                        a.int(r),
                        b.int(r),
                        "r{r} diverged at trips={trips} factor={factor}"
                    );
                }
                assert_eq!(a.pred(1), b.pred(1), "trips={trips} factor={factor}");
                assert!(a.mem.semantically_eq(&b.mem), "trips={trips} factor={factor}");
            }
        }
    }

    #[test]
    fn unrolling_grows_the_loop_block() {
        let p = counted_sum(64);
        let u = unroll_loops(&p, 4);
        let orig = p.block(BlockId(1)).unwrap().len();
        let grown = u.block(BlockId(1)).unwrap().len();
        assert!(grown > 3 * orig, "{grown} vs {orig}");
        // Remainder loop appended.
        assert_eq!(u.num_blocks(), p.num_blocks() + 1);
    }

    #[test]
    fn temporaries_are_renamed_per_copy() {
        let p = counted_sum(64);
        let u = unroll_loops(&p, 2);
        let block = u.block(BlockId(1)).unwrap();
        // The load temporary r4 must appear under a fresh name in copy 2.
        let loads: Vec<Reg> =
            block.iter().filter(|i| i.op().is_load()).filter_map(|i| i.dst_reg()).collect();
        assert_eq!(loads.len(), 2);
        assert_ne!(loads[0], loads[1], "copies must not share the load temp");
    }

    #[test]
    fn ineligible_loops_are_untouched() {
        // Pointer-chase loop (no counter pattern): must pass through.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x1000));
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)));
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
        let b2 = p.add_block();
        p.push(b2, Inst::new(Op::Halt));
        let u = unroll_loops(&p, 4);
        assert_eq!(u, p);
    }

    #[test]
    fn live_out_temporaries_keep_their_final_values() {
        // Same loop, but r4 (the per-iteration load value) is read AFTER
        // the loop: the pass must not rename it, and its final value must
        // be the last iteration's.
        let mut p = counted_sum(10);
        let b2 = BlockId(2);
        // Insert a use of r4 before the halt.
        let block = p.block_mut(b2).unwrap();
        block.insert(0, Inst::new(Op::Add).dst(Reg::int(5)).src(Reg::int(4)).src(Reg::int(4)));
        let u = unroll_loops(&p, 4);
        let a = run(&p);
        let b = run(&u);
        assert_eq!(a.int(4), b.int(4), "live-out temp must be preserved");
        assert_eq!(a.int(5), b.int(5));
        assert_eq!(b.int(4), 10, "last loaded value");
    }

    #[test]
    fn loop_predicate_has_the_architectural_final_value() {
        let p = counted_sum(10);
        let u = unroll_loops(&p, 4);
        let a = run(&p);
        let b = run(&u);
        assert_eq!(a.pred(1), b.pred(1), "p1 must match the original loop's exit value");
        assert!(!b.pred(1));
    }
}
