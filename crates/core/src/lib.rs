//! "Flea-flicker" multipass pipelining (Barnes, Ryoo & Hwu, MICRO 2005).
//!
//! This crate implements the paper's primary contribution: an in-order EPIC
//! pipeline that, instead of idling behind a data-cache-interlocked
//! instruction, makes *multiple, carefully controlled in-order passes*
//! through the subsequent instructions, preserving every valid result so
//! that each pass — and the final architectural pass — runs faster and
//! cheaper than the last.
//!
//! The microarchitecture follows §3 of the paper:
//!
//! * **Modes** ([`pipeline::Mode`]): *architectural* (multipass structures
//!   clock-gated), *advance* (speculative preexecution past the stalled
//!   trigger), and *rally* (architectural resumption accelerated by
//!   preserved results).
//! * **SRF + A-bits**: a speculative register file shadowing the
//!   architectural one; an A-bit redirects consumers to the SRF, an I-bit
//!   marks values poisoned by deferred producers.
//! * **Result store (RS) + E-bits**: per-instruction-queue-entry preserved
//!   results; E-marked instructions *merge* instead of re-executing, carry
//!   no dependences, and enable **issue regrouping** (§3.2) — dynamically
//!   larger issue groups without reordering.
//! * **Advance restart** (§3.3): compiler-inserted `RESTART` markers with
//!   unready operands restart the pass at the trigger, picking up
//!   newly-arrived short-miss results.
//! * **WAW policy** (§3.5): advance loads that miss the L1 skip the SRF
//!   write-back; their value is deposited in the RS when the miss returns.
//! * **SMAQ + advance store cache** (§3.6): advance stores forward through
//!   a small low-associativity [`asc::AdvanceStoreCache`]; deferred stores
//!   or ASC replacement make later loads *data speculative* (S-bit), which
//!   rally verifies value-wise, flushing on mismatch.
//!
//! # Example
//!
//! ```
//! use ff_engine::{ExecutionModel, MachineConfig, SimCase};
//! use ff_isa::{Inst, MemoryImage, Op, Program, Reg};
//! use ff_multipass::Multipass;
//!
//! let mut p = Program::new();
//! let b = p.add_block();
//! p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(21).stop());
//! p.push(b, Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(1)).src(Reg::int(1)).stop());
//! p.push(b, Inst::new(Op::Halt).stop());
//! let case = SimCase::new(&p, MemoryImage::new());
//! let result = Multipass::new(MachineConfig::default()).run(&case);
//! assert_eq!(result.final_state.int(2), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asc;
pub mod config;
pub mod entry;
pub mod pipeline;
pub mod srf;

pub use asc::AdvanceStoreCache;
pub use config::{MultipassConfig, RestartStrategy};
pub use pipeline::{Mode, Multipass};
