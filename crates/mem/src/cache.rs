//! A set-associative, LRU, tag-only cache model.
//!
//! Only tags are tracked — data values live in the functional
//! `ff_isa::MemoryImage`. The cache answers "would this access hit?" and
//! maintains replacement state.

use crate::config::CacheConfig;

/// A set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use ff_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64, 1));
/// assert!(!c.access(0));        // cold miss
/// c.fill(0);
/// assert!(c.access(0));         // now hits
/// assert!(c.access(63));        // same line
/// assert!(!c.access(64));       // next line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Per-set LRU stacks of line addresses, most-recently-used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.assoc as usize); config.num_sets() as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The line address (byte address of the line start) containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / self.config.line_bytes) % self.config.num_sets()) as usize
    }

    /// Probes for `addr`, updating LRU and hit/miss counters. Returns
    /// whether the access hit. Does **not** allocate on miss; call
    /// [`Cache::fill`] for that (the [`crate::MemorySystem`] separates the
    /// two so MSHR merging can intervene).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Probes without updating LRU or counters.
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        self.sets[set].contains(&line)
    }

    /// Installs the line containing `addr` as most-recently-used, evicting
    /// the LRU line of the set if necessary. Returns the evicted line
    /// address, if any. Filling an already-present line just refreshes LRU.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let assoc = self.config.assoc as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            return None;
        }
        ways.insert(0, line);
        if ways.len() > assoc {
            ways.pop()
        } else {
            None
        }
    }

    /// Removes the line containing `addr` if present (back-invalidation).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64B lines.
        Cache::new(CacheConfig::new(256, 2, 64, 1))
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 128, 256 all map to set 0 (line/64 % 2 == 0).
        c.fill(0);
        c.fill(128);
        assert!(c.probe(0) && c.probe(128));
        // Touch 0 so 128 is LRU, then fill 256 -> evicts 128.
        assert!(c.access(0));
        let evicted = c.fill(256);
        assert_eq!(evicted, Some(128));
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        c.fill(0); // set 0
        c.fill(64); // set 1
        c.fill(128); // set 0
        assert!(c.probe(64));
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn fill_refreshes_lru_without_duplication() {
        let mut c = tiny();
        c.fill(0);
        c.fill(128);
        assert_eq!(c.fill(0), None); // refresh, no eviction
        assert_eq!(c.fill(256), Some(128));
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = tiny();
        assert!(!c.access(0));
        c.fill(0);
        assert!(c.access(0));
        assert!(c.access(32)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.fill(0);
        c.fill(128);
        // Probing 128 must not make it MRU.
        assert!(c.probe(0));
        let _ = c.probe(128);
        let evicted = c.fill(256);
        // LRU order is [128, 0] by fill order; probe didn't change it, so 0
        // was MRU from fill(0)? fills order: 0 then 128 => MRU=128, LRU=0.
        assert_eq!(evicted, Some(0));
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(!c.invalidate(0));
    }
}
