//! Dynamic-trace recording for the trace-driven out-of-order models.
//!
//! The out-of-order timing models are *trace driven*: the golden functional
//! semantics produce the correct-path dynamic instruction stream with
//! dataflow links (register producers and same-address store→load memory
//! dependences), and the timing model schedules that stream under window,
//! ROB, functional-unit, and memory constraints. Wrong-path instructions
//! affect timing through branch-resolution bubbles but do not pollute the
//! caches — consistent with the paper's *idealized* out-of-order model
//! (§5.1), which deliberately excludes several realistic overheads.

use std::collections::HashMap;

use ff_isa::eval::{alu, effective_address};
use ff_isa::{ArchState, Inst, Op, Pc, Program, Reg};

/// One dynamic instruction in a recorded trace.
#[derive(Clone, Debug)]
pub struct TraceInst {
    /// Position in the dynamic stream.
    pub seq: u64,
    /// Static location.
    pub pc: Pc,
    /// The static instruction.
    pub inst: Inst,
    /// Whether the qualifying predicate evaluated true.
    pub qp_true: bool,
    /// Trace indices of the register producers this instruction must wait
    /// for: the qualifying predicate and, when `qp_true`, each source.
    pub reg_deps: Vec<u64>,
    /// Trace index of the most recent store to the same word, for loads
    /// (perfect memory disambiguation, per the idealized model).
    pub mem_dep: Option<u64>,
    /// Effective address for memory operations that executed.
    pub addr: Option<u64>,
    /// For branches: whether it was taken.
    pub taken: bool,
    /// Destination register and value written, when the instruction
    /// architecturally wrote one.
    pub wrote: Option<(Reg, u64)>,
    /// Address and data stored, for stores that executed.
    pub stored: Option<(u64, u64)>,
}

impl TraceInst {
    /// Whether this entry is a conditional (predictor-consulting) branch.
    pub fn is_conditional_branch(&self) -> bool {
        matches!(self.inst.op(), Op::Br { .. }) && self.inst.is_predicated()
    }
}

/// A recorded correct-path dynamic trace.
#[derive(Clone, Debug)]
pub struct DynTrace {
    insts: Vec<TraceInst>,
    final_state: ArchState,
}

/// Error produced when trace recording fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordTraceError {
    /// The program exceeded the dynamic-instruction budget without halting.
    OutOfFuel,
    /// Control escaped the program.
    InvalidControl,
}

impl std::fmt::Display for RecordTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordTraceError::OutOfFuel => write!(f, "instruction budget exhausted"),
            RecordTraceError::InvalidControl => write!(f, "control escaped the program"),
        }
    }
}

impl std::error::Error for RecordTraceError {}

impl DynTrace {
    /// Records the dynamic trace of `program` starting from `initial`,
    /// stopping at `Halt`.
    ///
    /// # Errors
    ///
    /// Returns [`RecordTraceError::OutOfFuel`] if more than `max_insts`
    /// dynamic instructions execute, or
    /// [`RecordTraceError::InvalidControl`] if control leaves the program.
    pub fn record(
        program: &Program,
        initial: ArchState,
        max_insts: u64,
    ) -> Result<DynTrace, RecordTraceError> {
        let mut state = initial;
        let mut insts: Vec<TraceInst> = Vec::new();
        // Last dynamic writer of each register (trace index).
        let mut last_writer: Vec<Option<u64>> = vec![None; Reg::FLAT_COUNT];
        // Last dynamic store to each word address.
        let mut last_store: HashMap<u64, u64> = HashMap::new();
        let mut pc = match program.first_pc_from(ff_isa::program::BlockId(0)) {
            Some(pc) => pc,
            None => return Err(RecordTraceError::InvalidControl),
        };

        for seq in 0..max_insts {
            let inst = match program.inst(pc) {
                Some(i) => i.clone(),
                None => return Err(RecordTraceError::InvalidControl),
            };
            let qp_true = state.read(inst.qp_reg()) != 0;
            let mut reg_deps: Vec<u64> = Vec::new();
            let mut push_dep = |r: Reg, lw: &[Option<u64>]| {
                if !r.is_hardwired() {
                    if let Some(w) = lw[r.flat_index()] {
                        reg_deps.push(w);
                    }
                }
            };
            if inst.is_predicated() {
                push_dep(inst.qp_reg(), &last_writer);
            }
            if qp_true {
                for s in inst.srcs() {
                    push_dep(s, &last_writer);
                }
            }
            reg_deps.sort_unstable();
            reg_deps.dedup();

            let mut addr = None;
            let mut mem_dep = None;
            let mut taken = false;
            let mut wrote = None;
            let mut stored = None;
            let mut next = program.next_pc(pc);
            let mut halted = false;

            if qp_true {
                match inst.op() {
                    Op::Halt => halted = true,
                    Op::Br { target } => {
                        taken = true;
                        next = program.first_pc_from(*target);
                    }
                    Op::Load | Op::LoadFp => {
                        let base = state.read(inst.src_n(0).expect("load base"));
                        let a = effective_address(base, inst.imm_val());
                        addr = Some(a);
                        mem_dep = last_store.get(&ff_isa::MemoryImage::word_addr(a)).copied();
                        let v = state.mem.load(a);
                        if let Some(d) = inst.writes() {
                            state.write(d, v);
                            wrote = Some((d, v));
                        }
                    }
                    Op::Store => {
                        let base = state.read(inst.src_n(0).expect("store base"));
                        let data = state.read(inst.src_n(1).expect("store data"));
                        let a = effective_address(base, inst.imm_val());
                        addr = Some(a);
                        state.mem.store(a, data);
                        stored = Some((a, data));
                        last_store.insert(ff_isa::MemoryImage::word_addr(a), seq);
                    }
                    Op::Nop | Op::Restart => {}
                    op => {
                        let a = inst.src_n(0).map(|r| state.read(r)).unwrap_or(0);
                        let b = inst.src_n(1).map(|r| state.read(r)).unwrap_or(0);
                        let v = alu(op, a, b, inst.imm_val());
                        if let Some(d) = inst.writes() {
                            state.write(d, v);
                            wrote = Some((d, v));
                        }
                    }
                }
                if let Some(d) = inst.writes() {
                    last_writer[d.flat_index()] = Some(seq);
                }
            }

            insts.push(TraceInst {
                seq,
                pc,
                inst,
                qp_true,
                reg_deps,
                mem_dep,
                addr,
                taken,
                wrote,
                stored,
            });
            if halted {
                return Ok(DynTrace { insts, final_state: state });
            }
            pc = match next {
                Some(p) => p,
                None => return Err(RecordTraceError::InvalidControl),
            };
        }
        Err(RecordTraceError::OutOfFuel)
    }

    /// The trace entries in dynamic order.
    pub fn insts(&self) -> &[TraceInst] {
        &self.insts
    }

    /// Number of dynamic instructions (including the final `Halt`).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The architectural state after the trace completes.
    pub fn final_state(&self) -> &ArchState {
        &self.final_state
    }

    /// Consumes the trace, yielding the final architectural state without
    /// cloning its memory image.
    pub fn into_final_state(self) -> ArchState {
        self.final_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::interp::Interpreter;

    fn memory_loop() -> (Program, ArchState) {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        // r1 = 0x1000 (array base), r2 = 4 (count), r3 = 0 (sum)
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x1000));
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(4));
        // loop: r4 = load r1; r3 += r4; store r3 -> (r1+0x800); r1 += 8;
        //       r2 -= 1; if r2 != 0 goto loop
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)));
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
        p.push(b1, Inst::new(Op::Store).src(Reg::int(1)).src(Reg::int(3)).imm(0x800));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)));
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
        p.push(b2, Inst::new(Op::Halt));
        let mut s = ArchState::new();
        for i in 0..4u64 {
            s.mem.store(0x1000 + i * 8, i + 1);
        }
        (p, s)
    }

    #[test]
    fn trace_matches_interpreter_final_state() {
        let (p, s) = memory_loop();
        let t = DynTrace::record(&p, s.clone(), 100_000).unwrap();
        let mut i = Interpreter::with_state(&p, s);
        i.run(100_000).unwrap();
        assert!(t.final_state().semantically_eq(i.state()));
        assert_eq!(t.len() as u64, i.retired());
    }

    #[test]
    fn register_deps_point_at_producers() {
        let (p, s) = memory_loop();
        let t = DynTrace::record(&p, s, 100_000).unwrap();
        // Dynamic inst 3 is `r3 += r4` of iteration 1: depends on the load
        // (seq 2) and on nothing else fetched earlier that writes r3.
        let add = &t.insts()[3];
        assert!(add.reg_deps.contains(&2));
    }

    #[test]
    fn store_load_dependence_found() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x40));
        p.push(b, Inst::new(Op::Store).src(Reg::int(1)).src(Reg::int(1)));
        p.push(b, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)));
        p.push(b, Inst::new(Op::Halt));
        let t = DynTrace::record(&p, ArchState::new(), 100).unwrap();
        assert_eq!(t.insts()[2].mem_dep, Some(1));
    }

    #[test]
    fn predicated_false_depends_only_on_predicate() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::CmpEq).dst(Reg::pred(1)).src(Reg::int(0)).src(Reg::int(1)));
        // r5 differs from r0 -> predicate false... wait, r0==0 and r1==0.
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(3)).imm(9).qp(Reg::pred(2)));
        p.push(b, Inst::new(Op::Halt));
        let t = DynTrace::record(&p, ArchState::new(), 100).unwrap();
        let mv = &t.insts()[1];
        assert!(!mv.qp_true); // p2 was never written -> false
        assert!(mv.reg_deps.is_empty()); // p2 has no producer
        assert_eq!(t.final_state().int(3), 0);
    }

    #[test]
    fn branch_outcomes_recorded() {
        let (p, s) = memory_loop();
        let t = DynTrace::record(&p, s, 100_000).unwrap();
        let branches: Vec<_> = t.insts().iter().filter(|i| i.is_conditional_branch()).collect();
        assert_eq!(branches.len(), 4);
        assert!(branches[..3].iter().all(|b| b.taken));
        assert!(!branches[3].taken);
    }

    #[test]
    fn predicated_false_memory_ops_have_no_address() {
        let mut p = Program::new();
        let b = p.add_block();
        // p2 stays false: the load never executes.
        p.push(b, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(2)).qp(Reg::pred(2)));
        p.push(b, Inst::new(Op::Store).src(Reg::int(2)).src(Reg::int(3)).qp(Reg::pred(2)));
        p.push(b, Inst::new(Op::Halt));
        let t = DynTrace::record(&p, ArchState::new(), 100).unwrap();
        assert!(!t.insts()[0].qp_true);
        assert_eq!(t.insts()[0].addr, None);
        assert_eq!(t.insts()[1].addr, None);
        assert_eq!(t.insts()[0].mem_dep, None);
    }

    #[test]
    fn dep_lists_are_deduplicated() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(3));
        // Both sources come from the same producer.
        p.push(b, Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(1)).src(Reg::int(1)));
        p.push(b, Inst::new(Op::Halt));
        let t = DynTrace::record(&p, ArchState::new(), 100).unwrap();
        assert_eq!(t.insts()[1].reg_deps, vec![0]);
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::Br { target: b })); // infinite loop
        let r = DynTrace::record(&p, ArchState::new(), 100);
        assert_eq!(r.unwrap_err(), RecordTraceError::OutOfFuel);
    }
}
