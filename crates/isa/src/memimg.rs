//! Functional data memory.
//!
//! [`MemoryImage`] is the *functional* half of the memory system: a sparse,
//! word-addressed store of 64-bit values. The *timing* half (caches, MSHRs,
//! latencies) lives in `ff-mem`; pipeline models consult both. Addresses are
//! byte addresses; accesses are 8-byte-aligned words (the compiler stand-in
//! only emits aligned word accesses, matching the ILP32-on-64-bit-words
//! simplification documented in DESIGN.md).

use std::collections::HashMap;

/// Word size of every memory access, in bytes.
pub const WORD_BYTES: u64 = 8;

/// Sparse functional memory, word-granular, zero-initialized.
///
/// # Examples
///
/// ```
/// use ff_isa::MemoryImage;
/// let mut m = MemoryImage::new();
/// assert_eq!(m.load(0x1000), 0);
/// m.store(0x1000, 42);
/// assert_eq!(m.load(0x1000), 42);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryImage {
    words: HashMap<u64, u64>,
}

impl MemoryImage {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rounds a byte address down to its containing word address.
    pub fn word_addr(addr: u64) -> u64 {
        addr & !(WORD_BYTES - 1)
    }

    /// Loads the 64-bit word containing byte address `addr`. Unwritten
    /// locations read as zero.
    pub fn load(&self, addr: u64) -> u64 {
        self.words.get(&Self::word_addr(addr)).copied().unwrap_or(0)
    }

    /// Stores a 64-bit word at the word containing byte address `addr`,
    /// returning the previous value.
    pub fn store(&mut self, addr: u64, value: u64) -> u64 {
        self.words.insert(Self::word_addr(addr), value).unwrap_or(0)
    }

    /// Number of words that have been written (footprint proxy).
    pub fn written_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates over `(word_address, value)` pairs of written words in an
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }

    /// Compares two images as mathematical functions (treating absent words
    /// as zero), so an explicit zero store equals an untouched word.
    pub fn semantically_eq(&self, other: &MemoryImage) -> bool {
        let covers = |a: &MemoryImage, b: &MemoryImage| a.iter().all(|(addr, v)| b.load(addr) == v);
        covers(self, other) && covers(other, self)
    }
}

impl FromIterator<(u64, u64)> for MemoryImage {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        let mut m = MemoryImage::new();
        for (addr, v) in iter {
            m.store(addr, v);
        }
        m
    }
}

impl Extend<(u64, u64)> for MemoryImage {
    fn extend<T: IntoIterator<Item = (u64, u64)>>(&mut self, iter: T) {
        for (addr, v) in iter {
            self.store(addr, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = MemoryImage::new();
        assert_eq!(m.load(0), 0);
        assert_eq!(m.load(0xdead_beef), 0);
        assert_eq!(m.written_words(), 0);
    }

    #[test]
    fn store_load_round_trip() {
        let mut m = MemoryImage::new();
        m.store(64, 7);
        assert_eq!(m.load(64), 7);
        assert_eq!(m.store(64, 9), 7);
        assert_eq!(m.load(64), 9);
    }

    #[test]
    fn subword_addresses_alias_their_word() {
        let mut m = MemoryImage::new();
        m.store(0x100, 5);
        for off in 0..8 {
            assert_eq!(m.load(0x100 + off), 5, "offset {off} should alias");
        }
        assert_eq!(m.load(0x108), 0);
    }

    #[test]
    fn semantic_equality_ignores_explicit_zeros() {
        let mut a = MemoryImage::new();
        a.store(8, 0);
        let b = MemoryImage::new();
        assert!(a.semantically_eq(&b));
        a.store(8, 1);
        assert!(!a.semantically_eq(&b));
    }

    #[test]
    fn from_iterator_collects() {
        let m: MemoryImage = vec![(0u64, 1u64), (8, 2)].into_iter().collect();
        assert_eq!(m.load(0), 1);
        assert_eq!(m.load(8), 2);
    }
}
