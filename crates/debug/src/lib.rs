//! First-divergence triage for the flea-flicker execution models.
//!
//! Every timing model in this workspace must retire the same architectural
//! instruction stream as the golden [`Interpreter`]. When one doesn't, the
//! end-of-run `semantically_eq` oracle only says *that* the final states
//! differ — often millions of dynamic instructions after the actual bug.
//!
//! [`LockstepChecker`] closes that gap: it is a
//! [`RetireHook`](ff_engine::RetireHook) that steps the golden interpreter
//! once per [`RetireEvent`] and cross-checks, in order,
//!
//! 1. **control** — the retired pc against the golden next-pc;
//! 2. **predicate** — the model's qualifying-predicate outcome (when it
//!    reported one) against the golden evaluation;
//! 3. **register** — the value the model wrote against the golden
//!    post-step register file, including writes the model *failed* to
//!    perform;
//! 4. **memory** — the store the model performed (address and data)
//!    against the golden store effect, including missing stores;
//! 5. **stream length** — retirements past the golden `Halt`.
//!
//! The first mismatch freezes into a [`Divergence`] carrying the retired
//! sequence number, pc, instruction, pipeline mode, the active
//! advance-episode window (trigger / PEEK / DEQ, multipass only), and a
//! short history of the retirements leading up to it.
//!
//! [`compare_model`] wraps the whole flow for one model + workload and
//! returns a [`ComparisonReport`] whose `Display` is a human-readable
//! triage report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use ff_engine::{
    EpisodeWindow, ExecutionModel, RetireEvent, RetireHook, RetireMode, RetireRing, RunResult,
    SimCase,
};
use ff_isa::eval::effective_address;
use ff_isa::interp::Interpreter;
use ff_isa::{Inst, Op, Pc, Reg};

/// How many retirements before the divergence are retained for the report.
pub const HISTORY_LEN: usize = 16;

/// What differed at the first divergent retirement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The model retired an instruction at the wrong pc. `expected` is
    /// `None` when golden control escaped the program.
    Control {
        /// The pc the golden interpreter was about to execute.
        expected: Option<Pc>,
        /// The pc the model retired.
        actual: Pc,
    },
    /// The model resolved the qualifying predicate to the wrong value.
    Predicate {
        /// Golden predicate outcome.
        expected: bool,
        /// The model's outcome.
        actual: bool,
    },
    /// The model wrote a different value than the golden execution.
    Register {
        /// The destination register.
        reg: Reg,
        /// Golden post-execution value.
        expected: u64,
        /// The value the model wrote.
        actual: u64,
    },
    /// The golden execution wrote a register but the model reported no
    /// write at all.
    MissingWrite {
        /// The destination register the model skipped.
        reg: Reg,
        /// Golden post-execution value.
        expected: u64,
    },
    /// The store effect differs (address or data), one side performed a
    /// store the other didn't, or both.
    Store {
        /// Golden `(address, data)`, `None` if golden performed no store.
        expected: Option<(u64, u64)>,
        /// Model `(address, data)`, `None` if the model reported no store.
        actual: Option<(u64, u64)>,
    },
    /// The model retired an instruction after the golden program halted.
    ExtraRetirement,
    /// The golden interpreter itself failed (malformed program).
    GoldenError(
        /// The interpreter's error message.
        String,
    ),
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceKind::Control { expected: Some(e), actual } => {
                write!(f, "control: golden is at {e}, model retired {actual}")
            }
            DivergenceKind::Control { expected: None, actual } => {
                write!(f, "control: golden control escaped, model retired {actual}")
            }
            DivergenceKind::Predicate { expected, actual } => {
                write!(f, "predicate: golden qp={expected}, model resolved qp={actual}")
            }
            DivergenceKind::Register { reg, expected, actual } => write!(
                f,
                "register {reg}: expected {expected:#x} ({expected}), model wrote {actual:#x} ({actual})"
            ),
            DivergenceKind::MissingWrite { reg, expected } => {
                write!(f, "register {reg}: expected a write of {expected:#x}, model wrote nothing")
            }
            DivergenceKind::Store { expected, actual } => {
                write!(f, "store: expected ")?;
                match expected {
                    Some((a, d)) => write!(f, "[{a:#x}]={d:#x}")?,
                    None => write!(f, "none")?,
                }
                write!(f, ", model performed ")?;
                match actual {
                    Some((a, d)) => write!(f, "[{a:#x}]={d:#x}"),
                    None => write!(f, "none"),
                }
            }
            DivergenceKind::ExtraRetirement => {
                write!(f, "stream: model retired past the golden Halt")
            }
            DivergenceKind::GoldenError(e) => write!(f, "golden interpreter error: {e}"),
        }
    }
}

/// The first point at which a model's retirement stream departs from the
/// golden execution.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Retired dynamic sequence number of the divergent instruction.
    pub seq: u64,
    /// Model cycle at which it retired.
    pub cycle: u64,
    /// Its pc.
    pub pc: Pc,
    /// The instruction itself.
    pub inst: Inst,
    /// Pipeline mode the model was in when it retired.
    pub mode: RetireMode,
    /// Whether the result was merged from the multipass result store.
    pub merged: bool,
    /// The advance-episode window active at retirement (multipass only).
    pub episode: Option<EpisodeWindow>,
    /// What differed.
    pub kind: DivergenceKind,
    /// The retirements leading up to (and including) the divergent one,
    /// oldest first.
    pub history: Vec<RetireEvent<'static>>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergence at retired seq #{} (cycle {}):", self.seq, self.cycle)?;
        writeln!(f, "  {} `{}`", self.pc, self.inst)?;
        write!(f, "  mode: {}{}", self.mode, if self.merged { " (merged result)" } else { "" })?;
        match self.episode {
            Some(ep) => writeln!(f, ", episode {ep}")?,
            None => writeln!(f)?,
        }
        writeln!(f, "  {}", self.kind)?;
        if !self.history.is_empty() {
            writeln!(f, "  last {} retirements:", self.history.len())?;
            for ev in &self.history {
                writeln!(f, "    {ev}")?;
            }
        }
        Ok(())
    }
}

/// A [`RetireHook`](ff_engine::RetireHook) that runs the golden
/// interpreter in lockstep with a model's retirement stream and freezes
/// the first divergence.
///
/// After the model run, [`LockstepChecker::divergence`] holds the verdict.
pub struct LockstepChecker<'a> {
    interp: Interpreter<'a>,
    ring: RetireRing,
    divergence: Option<Divergence>,
}

impl<'a> LockstepChecker<'a> {
    /// Creates a checker for one simulation case.
    pub fn new(case: &SimCase<'a>) -> Self {
        LockstepChecker {
            interp: Interpreter::with_state(case.program, case.initial_state()),
            ring: RetireRing::new(HISTORY_LEN),
            divergence: None,
        }
    }

    /// The first divergence, if one was found.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// Consumes the checker, returning the divergence.
    pub fn into_divergence(self) -> Option<Divergence> {
        self.divergence
    }

    /// Retirements observed before the stream was frozen.
    pub fn events_checked(&self) -> u64 {
        self.ring.total()
    }

    fn diverge(&mut self, event: &RetireEvent<'_>, kind: DivergenceKind) {
        self.divergence = Some(Divergence {
            seq: event.seq,
            cycle: event.cycle,
            pc: event.pc,
            inst: event.inst.as_ref().clone(),
            mode: event.mode,
            merged: event.merged,
            episode: event.episode,
            kind,
            history: self.ring.events().cloned().collect(),
        });
    }

    /// Runs the checks for one retirement. Split out of the trait impl so
    /// the first error can return early.
    fn check(&mut self, event: &RetireEvent) {
        // 1. Stream length: the golden program already halted.
        if self.interp.is_halted() {
            self.diverge(event, DivergenceKind::ExtraRetirement);
            return;
        }

        // 2. Control: the model must retire exactly the golden next pc.
        let golden_pc = self.interp.pc();
        if golden_pc != Some(event.pc) {
            self.diverge(event, DivergenceKind::Control { expected: golden_pc, actual: event.pc });
            return;
        }

        // Golden pre-step facts: predicate outcome and store effect.
        let inst = &event.inst;
        let state = self.interp.state();
        let golden_qp = state.read(inst.qp_reg()) != 0;
        let golden_store = if golden_qp && matches!(inst.op(), Op::Store) {
            let base = state.read(inst.src_n(0).expect("store has a base"));
            let data = state.read(inst.src_n(1).expect("store has data"));
            Some((effective_address(base, inst.imm_val()), data))
        } else {
            None
        };

        // 3. Predicate (when the model resolved it at retirement; merged
        // multipass results resolved it during an earlier pass).
        if let Some(model_qp) = event.qp_true {
            if model_qp != golden_qp {
                self.diverge(
                    event,
                    DivergenceKind::Predicate { expected: golden_qp, actual: model_qp },
                );
                return;
            }
        }

        if let Err(e) = self.interp.step() {
            self.diverge(event, DivergenceKind::GoldenError(e.to_string()));
            return;
        }

        // 4. Register write, against the golden post-step register file.
        match event.wrote {
            Some((reg, actual)) => {
                let expected = self.interp.state().read(reg);
                if actual != expected {
                    self.diverge(event, DivergenceKind::Register { reg, expected, actual });
                    return;
                }
            }
            None => {
                if golden_qp {
                    if let Some(reg) = inst.writes() {
                        // A merged Nop (or a model bug) dropped the write.
                        // Hardwired destinations are writable in name only.
                        if !reg.is_hardwired() && !matches!(inst.op(), Op::Store) {
                            let expected = self.interp.state().read(reg);
                            self.diverge(event, DivergenceKind::MissingWrite { reg, expected });
                            return;
                        }
                    }
                }
            }
        }

        // 5. Store effect.
        if event.stored != golden_store {
            self.diverge(
                event,
                DivergenceKind::Store { expected: golden_store, actual: event.stored },
            );
        }
    }
}

impl RetireHook for LockstepChecker<'_> {
    fn on_retire(&mut self, event: &RetireEvent) {
        if self.divergence.is_some() {
            return; // frozen on the first divergence
        }
        self.ring.push(event.clone());
        self.check(event);
    }
}

/// Outcome of one differential run of a model against the golden
/// interpreter.
#[derive(Clone, Debug)]
pub struct ComparisonReport {
    /// The model's name.
    pub model: &'static str,
    /// The first retirement-level divergence, if any.
    pub divergence: Option<Divergence>,
    /// Dynamic instructions the model retired.
    pub model_retired: u64,
    /// Dynamic instructions the golden interpreter retired.
    pub golden_retired: u64,
    /// Whether the final architectural states are semantically equal.
    pub final_state_eq: bool,
    /// The model's run result (stats, activity, final state).
    pub result: RunResult,
}

impl ComparisonReport {
    /// Whether model and golden execution agreed completely.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
            && self.final_state_eq
            && self.model_retired == self.golden_retired
    }
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model `{}` vs golden interpreter: {}",
            self.model,
            if self.is_clean() { "OK" } else { "DIVERGED" }
        )?;
        writeln!(
            f,
            "  retired: model {} / golden {}; final state {}",
            self.model_retired,
            self.golden_retired,
            if self.final_state_eq { "matches" } else { "DIFFERS" }
        )?;
        match &self.divergence {
            Some(d) => write!(f, "{d}")?,
            None if !self.is_clean() => writeln!(
                f,
                "  no retirement-level divergence — the model's architectural \
                 effects at retirement all matched, so the discrepancy comes \
                 from state the model mutated outside its reported retirements"
            )?,
            None => {}
        }
        Ok(())
    }
}

/// Runs `model` on `case` in lockstep with the golden interpreter and
/// reports the first divergence (if any) plus end-of-run comparisons.
pub fn compare_model(model: &mut dyn ExecutionModel, case: &SimCase<'_>) -> ComparisonReport {
    let mut checker = LockstepChecker::new(case);
    let result = model.run_hooked(case, &mut checker);

    let mut golden = Interpreter::with_state(case.program, case.initial_state());
    golden.run(case.max_insts).expect("golden interpreter failed on workload program");

    ComparisonReport {
        model: model.name(),
        divergence: checker.into_divergence(),
        model_retired: result.stats.retired,
        golden_retired: golden.retired(),
        final_state_eq: result.final_state.semantically_eq(golden.state()),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_baselines::InOrder;
    use ff_engine::MachineConfig;
    use ff_isa::{MemoryImage, Program};
    use ff_multipass::{Multipass, MultipassConfig};

    /// The Figure 1 shape: a pointer chase whose long misses open advance
    /// episodes, with enough independent work behind the stall for the
    /// result store to fill — merges are guaranteed.
    fn chase_workload(nodes: u64) -> (Program, MemoryImage) {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(5)).imm(0x400_0000).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0).stop());
        p.push(b1, Inst::new(Op::Restart).src(Reg::int(1)).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(4)).src(Reg::int(1)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(5)).region(1));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(5)).src(Reg::int(5)).imm(4096).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(2)));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(4)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        let stride = 128 * 1024;
        for i in 0..nodes {
            let a = 0x10_0000 + i * stride;
            let next = if i + 1 == nodes { 0 } else { 0x10_0000 + (i + 1) * stride };
            mem.store(a, next);
        }
        for i in 0..nodes {
            mem.store(0x400_0000 + i * 4096, i);
        }
        (p, mem)
    }

    #[test]
    fn clean_model_produces_clean_report() {
        let (p, mem) = chase_workload(16);
        let case = SimCase::new(&p, mem);
        let mut model = InOrder::new(MachineConfig::default());
        let report = compare_model(&mut model, &case);
        assert!(report.is_clean(), "unexpected divergence:\n{report}");
        assert!(report.divergence.is_none());
        assert_eq!(report.model_retired, report.golden_retired);
        assert!(report.to_string().contains("OK"));
    }

    #[test]
    fn clean_multipass_produces_clean_report() {
        let (p, mem) = chase_workload(24);
        let case = SimCase::new(&p, mem);
        let mut model = Multipass::new(MachineConfig::default());
        let report = compare_model(&mut model, &case);
        assert!(report.is_clean(), "unexpected divergence:\n{report}");
        // The chase actually exercised the multipass machinery.
        assert!(report.result.stats.rs_reuses > 0, "workload produced no merges");
    }

    /// The ISSUE's acceptance scenario: corrupt one result-store merge
    /// behind the debug flag and demonstrate that the triage report names
    /// the first divergent retired seq, the differing register, and the
    /// pipeline mode.
    #[test]
    fn injected_merge_fault_is_pinpointed() {
        let (p, mem) = chase_workload(24);
        let case = SimCase::new(&p, mem);

        // The fault only fires on a *value* merge; scan the first few merge
        // indices until one hits (Nop/Store merges pass the counter by).
        let mut found = None;
        for n in 0..64 {
            let mut cfg = MultipassConfig::new(MachineConfig::default());
            cfg.fault_corrupt_rs_merge = Some(n);
            let mut model = Multipass::with_config(cfg);
            let report = compare_model(&mut model, &case);
            if report.divergence.is_some() {
                found = Some(report);
                break;
            }
        }
        let report = found.expect("no merge index produced a divergence");
        let d = report.divergence.as_ref().unwrap();

        // The fault flips bit 0 of a merged value: a register divergence
        // on a merged retirement, caught at that exact instruction.
        assert!(d.merged, "fault was injected at a merge:\n{report}");
        let DivergenceKind::Register { reg, expected, actual } = &d.kind else {
            panic!("expected a register divergence, got:\n{report}");
        };
        assert_eq!(*actual, *expected ^ 1, "fault XORs bit 0:\n{report}");
        assert_eq!(d.mode, RetireMode::Rally, "merges retire in rally mode:\n{report}");
        assert!(d.episode.is_some(), "rally retirement carries an episode window:\n{report}");
        assert!(!d.history.is_empty());

        // The rendered report names seq, register, and mode.
        let text = report.to_string();
        assert!(text.contains(&format!("seq #{}", d.seq)), "{text}");
        assert!(text.contains(&reg.to_string()), "{text}");
        assert!(text.contains("rally"), "{text}");
    }

    #[test]
    fn extra_retirements_are_reported() {
        // A hook-level test: feed the checker one event past Halt.
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::Halt));
        let case = SimCase::new(&p, MemoryImage::new());
        let mut checker = LockstepChecker::new(&case);
        let pc = p.first_pc_from(ff_isa::program::BlockId(0)).unwrap();
        let ev = RetireEvent {
            seq: 0,
            cycle: 0,
            pc,
            inst: std::borrow::Cow::Owned(Inst::new(Op::Halt)),
            qp_true: Some(true),
            wrote: None,
            stored: None,
            mode: RetireMode::Architectural,
            merged: false,
            episode: None,
        };
        checker.on_retire(&ev);
        assert!(checker.divergence().is_none());
        checker.on_retire(&RetireEvent { seq: 1, ..ev });
        let d = checker.divergence().expect("second retirement is past Halt");
        assert_eq!(d.kind, DivergenceKind::ExtraRetirement);
    }
}
