//! The paper's motivating scenario on the mcf-like workload: a pointer
//! chase whose every hop misses to memory, with dependent loads behind the
//! stall. Shows how multipass turns serialized miss handling into
//! overlapped miss handling (Figure 1), and how much of that needs
//! advance restart.
//!
//! ```sh
//! cargo run --release --example mcf_pointer_chase
//! ```

use flea_flicker::baselines::{InOrder, Runahead};
use flea_flicker::engine::{ExecutionModel, MachineConfig, SimCase};
use flea_flicker::multipass::{Multipass, MultipassConfig};
use flea_flicker::workloads::{Scale, Workload};

fn main() {
    let w = Workload::by_name("mcf", Scale::Test).expect("mcf exists");
    let machine = MachineConfig::itanium2_base();
    let case = SimCase::new(&w.program, w.mem.clone());

    let base = InOrder::new(machine).run(&case);
    let ra = Runahead::new(machine).run(&case);
    let mp = Multipass::new(machine).run(&case);
    let mp_nr = Multipass::with_config(MultipassConfig::without_restart(machine)).run(&case);

    println!("mcf-like pointer chase ({} dynamic instructions)\n", base.stats.retired);
    println!(
        "{:<22} {:>10} {:>9} {:>12} {:>12}",
        "model", "cycles", "speedup", "load stalls", "mem stalls %"
    );
    for (name, r) in [
        ("in-order", &base),
        ("runahead (D-M)", &ra),
        ("multipass", &mp),
        ("multipass w/o restart", &mp_nr),
    ] {
        println!(
            "{:<22} {:>10} {:>8.2}x {:>12} {:>11.1}%",
            name,
            r.stats.cycles,
            base.stats.cycles as f64 / r.stats.cycles as f64,
            r.stats.breakdown.load,
            100.0 * r.stats.breakdown.load as f64 / r.stats.cycles as f64,
        );
    }
    println!();
    println!("multipass advance episodes : {}", mp.stats.spec_mode_entries);
    println!("multipass pass restarts    : {}", mp.stats.advance_restarts);
    println!("multipass results reused   : {}", mp.stats.rs_reuses);
    println!("speculative prefetches     : {}", mp.mem_stats.speculative_reads);

    // All models compute the same answer.
    assert!(base.final_state.semantically_eq(&mp.final_state));
    assert!(base.final_state.semantically_eq(&ra.final_state));
    assert!(base.final_state.semantically_eq(&mp_nr.final_state));
}
