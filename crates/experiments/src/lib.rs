//! Experiment harness reproducing every table and figure of the paper.
//!
//! | Paper artifact | Function | Bench target |
//! |---|---|---|
//! | Table 1 (power ratios) | [`table1_experiment`] | `table1_power` |
//! | Table 2 (machine config) | [`table2`] | `table2_config` |
//! | Figure 6 (cycle breakdown, base/MP/OOO) | [`figure6`] | `figure6_cycles` |
//! | Figure 7 (cache-hierarchy sweep) | [`figure7`] | `figure7_hierarchies` |
//! | Figure 8 (regrouping/restart ablation) | [`figure8`] | `figure8_ablation` |
//! | §5.2 realistic OOO comparison | [`realistic_ooo`] | `realistic_ooo` |
//! | §5.4 Dundas–Mudge comparison | [`runahead_compare`] | `runahead_compare` |
//!
//! All experiments run through a memoizing [`Suite`] so shared baselines
//! are simulated once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod figures;
pub mod render;
pub mod reports;
pub mod suite;

pub use figures::{
    figure6, figure7, figure8, realistic_ooo, runahead_compare, table1_experiment, table2, Figure6,
    Figure7, Figure8, RealisticOooResult, RunaheadResult,
};
pub use suite::{HierKind, ModelKind, ResultSource, Suite, UnknownBenchmark};
