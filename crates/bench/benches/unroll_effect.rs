//! Quantifies the static cross-iteration ILP that compiler loop unrolling
//! buys the in-order pipelines — the effect (together with modulo
//! scheduling) that lets the paper's OpenIMPACT baseline sit much closer to
//! ideal out-of-order execution than naive code does. See EXPERIMENTS.md,
//! deviation 1.

use ff_baselines::{InOrder, OutOfOrder};
use ff_engine::{ExecutionModel, MachineConfig, SimCase};
use ff_isa::{Inst, MemoryImage, Op, Program, Reg};
use ff_multipass::Multipass;

/// An L1-resident compute loop (wrapped 4 KB window): one load feeding a
/// short dependent chain, pointer bump with wrap — the canonical body whose
/// intra-iteration serial chain leaves an un-unrolled in-order pipe
/// issue-starved while ideal OOO overlaps iterations freely.
fn gather_loop(trips: i64) -> (Program, MemoryImage) {
    const WINDOW_WORDS: u64 = 512; // 4 KB: L1-resident after the first lap
    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    let b2 = p.add_block();
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000));
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(8)).imm(0x10_0000)); // base
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(9)).imm(((WINDOW_WORDS - 1) * 8) as i64));
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(trips));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)).region(0));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
    p.push(b1, Inst::new(Op::Shl).dst(Reg::int(5)).src(Reg::int(4)).imm(1));
    p.push(b1, Inst::new(Op::Xor).dst(Reg::int(6)).src(Reg::int(5)).src(Reg::int(4)));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(7)).src(Reg::int(7)).src(Reg::int(6)));
    // Wrapped pointer bump: r1 = base + ((r1 + 8) & mask).
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(10)).src(Reg::int(1)).imm(8));
    p.push(b1, Inst::new(Op::And).dst(Reg::int(10)).src(Reg::int(10)).src(Reg::int(9)));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(1)).src(Reg::int(8)).src(Reg::int(10)));
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1));
    p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)));
    p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
    p.push(b2, Inst::new(Op::Halt));
    let mut mem = MemoryImage::new();
    for i in 0..WINDOW_WORDS {
        mem.store(0x10_0000 + i * 8, i * 37 + 1);
    }
    (p, mem)
}

fn main() {
    let (raw, mem) = gather_loop(20_000);
    let machine = MachineConfig::itanium2_base();
    println!("=== Compiler loop unrolling vs the ideal-OOO gap ===\n");
    println!("{:<10} {:>10} {:>10} {:>10} {:>12}", "unroll", "inorder", "MP", "OOO", "inorder/OOO");
    let mut golden_mem: Option<ff_isa::MemoryImage> = None;
    for factor in [None, Some(2u32), Some(4), Some(6)] {
        let options = ff_compiler::CompilerOptions {
            unroll: factor,
            ..ff_compiler::CompilerOptions::default()
        };
        let program = ff_compiler::compile(&raw, &options);
        assert!(ff_compiler::verify_schedule(&program).is_ok());
        let case = SimCase::new(&program, mem.clone());
        let base = InOrder::new(machine).run(&case);
        let mp = Multipass::new(machine).run(&case);
        let ooo = OutOfOrder::new(machine).run(&case);
        // Memory semantics must be identical across factors.
        match &golden_mem {
            None => golden_mem = Some(base.final_state.mem.clone()),
            Some(g) => assert!(base.final_state.mem.semantically_eq(g)),
        }
        assert!(mp.final_state.semantically_eq(&base.final_state));
        assert!(ooo.final_state.semantically_eq(&base.final_state));
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>11.2}x",
            factor.map_or("none".to_string(), |f| format!("x{f}")),
            base.stats.cycles,
            mp.stats.cycles,
            ooo.stats.cycles,
            base.stats.cycles as f64 / ooo.stats.cycles as f64,
        );
    }
    println!("\nUnrolling shrinks the in-order pipes' execution cycles toward the");
    println!("dataflow limit, narrowing the gap ideal OOO holds over them — the");
    println!("effect the paper's modulo-scheduled binaries enjoyed by default.");
}
