//! The baseline in-order EPIC pipeline.
//!
//! Execution follows the compiler's plan exactly: instructions issue in
//! program order, at most one compiler issue group per cycle (EPIC stop
//! bits), with *split issue* within a group when a member stalls — the
//! Itanium 2 dispersal discipline. Variable-latency results are
//! scoreboarded; a consumer (or an output-dependent writer, §3.5) stalls
//! until the producer's result is ready. This is the `base` bar of
//! Figure 6: every cycle in which no instruction issues is charged to the
//! stall cause of the oldest unissued instruction.

use std::borrow::Cow;

use ff_engine::{
    operand_wake, Activity, ExecutionModel, FuPool, MachineConfig, PendingKind, RetireEvent,
    RetireHook, RetireMode, RunError, RunResult, RunStats, Scoreboard, SimCase, StallKind,
    TickMode,
};
use ff_frontend::{FetchUnit, Gshare};
use ff_isa::eval::{alu, effective_address};
use ff_isa::{ArchState, Op};
use ff_mem::{AccessKind, MemAccess, MemorySystem};

/// The baseline in-order model.
#[derive(Clone, Debug)]
pub struct InOrder {
    config: MachineConfig,
    tick: TickMode,
}

impl InOrder {
    /// Creates the model with the given machine configuration.
    pub fn new(config: MachineConfig) -> Self {
        InOrder { config, tick: TickMode::default() }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }
}

pub(crate) use ff_engine::operand_stall;

impl ExecutionModel for InOrder {
    fn name(&self) -> &'static str {
        "inorder"
    }

    fn set_tick_mode(&mut self, mode: TickMode) {
        self.tick = mode;
    }

    fn try_run_hooked(
        &mut self,
        case: &SimCase<'_>,
        hook: &mut dyn RetireHook,
    ) -> Result<RunResult, RunError> {
        let program = case.program;
        let cfg = &self.config;
        let cycle_cap = case.cycle_cap(cfg.max_cycles);
        let mut state: ArchState = case.initial_state();
        let mut mem = MemorySystem::new(cfg.hierarchy);
        let mut fetch = FetchUnit::new(
            program,
            cfg.inorder_buffer,
            cfg.fetch_width as usize,
            Gshare::new(cfg.gshare_entries),
        );
        let mut sb = Scoreboard::new();
        let mut fu = FuPool::new(cfg);
        let mut stats = RunStats::default();
        let mut activity = Activity::new();
        let hook_enabled = hook.enabled();

        let mut now: u64 = 0;
        let mut halted = false;

        while !halted {
            if now >= cycle_cap {
                return Err(RunError::CycleBudgetExceeded {
                    limit: cycle_cap,
                    retired: stats.retired,
                });
            }
            assert!(stats.retired < case.max_insts, "instruction budget exceeded");
            fetch.tick(program, &mut mem, now);
            fu.new_cycle(now);

            let mut issued_this_cycle = 0u32;
            let mut stall: Option<StallKind> = None;

            while issued_this_cycle < cfg.issue_width {
                let (pc, seq, predicted_next, snap) = match fetch.get(fetch.head_seq()) {
                    Some(e) if e.fetched_at <= now => {
                        (e.pc, e.seq, e.predicted_next, e.history_snapshot)
                    }
                    _ => break, // empty buffer (or entry still in flight)
                };
                // The fetch buffer holds a verbatim copy of the static
                // instruction; borrow the program's original rather than
                // cloning it into every issue slot.
                let inst = program.inst(pc).expect("fetched pc is valid");
                activity.select_visits += 1;

                if let Some(kind) = operand_stall(inst, &sb, now) {
                    stall = Some(kind);
                    break;
                }
                if !fu.try_issue(inst, now) {
                    stall = Some(StallKind::Other);
                    break;
                }

                // Read operands (bypass/regfile) and execute eagerly.
                let qp_true = state.read(inst.qp_reg()) != 0;
                activity.regfile_reads += inst.reads().count() as u64;
                let ends_group = inst.ends_group();
                let mut flushed = false;
                let mut stored = None;

                if qp_true {
                    match inst.op() {
                        Op::Halt => {
                            halted = true;
                        }
                        Op::Br { target } => {
                            let actual_next = program.first_pc_from(*target);
                            if inst.is_predicated() {
                                stats.branches += 1;
                                fetch.predictor_mut().update(pc, snap, true);
                            }
                            if predicted_next != actual_next {
                                stats.mispredicts += 1;
                                fetch.flush_after(
                                    seq,
                                    actual_next,
                                    now + cfg.mispredict_penalty,
                                    snap,
                                    true,
                                );
                                flushed = true;
                            }
                        }
                        Op::Load | Op::LoadFp => {
                            let base = state.read(inst.src_n(0).expect("load base"));
                            let addr = effective_address(base, inst.imm_val());
                            match mem.access(addr, AccessKind::DataRead, now) {
                                MemAccess::Done { complete_at, .. } => {
                                    let v = state.mem.load(addr);
                                    if let Some(d) = inst.writes() {
                                        state.write(d, v);
                                        sb.set_pending(d, complete_at, PendingKind::Load);
                                        activity.regfile_writes += 1;
                                    }
                                    stats.executions += 1;
                                }
                                MemAccess::Retry => {
                                    // MSHRs full: replay next cycle. The FU
                                    // slot is wasted, as in hardware.
                                    stall = Some(StallKind::Other);
                                    break;
                                }
                            }
                        }
                        Op::Store => {
                            let base = state.read(inst.src_n(0).expect("store base"));
                            let data = state.read(inst.src_n(1).expect("store data"));
                            let addr = effective_address(base, inst.imm_val());
                            state.mem.store(addr, data);
                            let _ = mem.access(addr, AccessKind::DataWrite, now);
                            stored = Some((addr, data));
                            stats.executions += 1;
                        }
                        Op::Nop | Op::Restart => {}
                        op => {
                            let a = inst.src_n(0).map(|r| state.read(r)).unwrap_or(0);
                            let b = inst.src_n(1).map(|r| state.read(r)).unwrap_or(0);
                            let v = alu(op, a, b, inst.imm_val());
                            if let Some(d) = inst.writes() {
                                state.write(d, v);
                                sb.set_pending(d, now + op.latency() as u64, PendingKind::Exec);
                                activity.regfile_writes += 1;
                            }
                            stats.executions += 1;
                        }
                    }
                } else {
                    // Predicated off: retires as a no-op, but a predicated
                    // branch still resolves (not-taken) against prediction.
                    if let Op::Br { .. } = inst.op() {
                        let actual_next = program.next_pc(pc);
                        stats.branches += 1;
                        fetch.predictor_mut().update(pc, snap, false);
                        if predicted_next != actual_next {
                            stats.mispredicts += 1;
                            fetch.flush_after(
                                seq,
                                actual_next,
                                now + cfg.mispredict_penalty,
                                snap,
                                false,
                            );
                            flushed = true;
                        }
                    }
                }

                if hook_enabled {
                    hook.on_retire(&RetireEvent {
                        seq,
                        cycle: now,
                        pc,
                        inst: Cow::Borrowed(inst),
                        qp_true: Some(qp_true),
                        wrote: if qp_true {
                            inst.writes().map(|d| (d, state.read(d)))
                        } else {
                            None
                        },
                        stored,
                        mode: RetireMode::Architectural,
                        merged: false,
                        episode: None,
                    });
                }
                fetch.pop_front();
                stats.retired += 1;
                issued_this_cycle += 1;

                if halted || flushed || ends_group {
                    break;
                }
            }

            if issued_this_cycle > 0 {
                stats.breakdown.charge(StallKind::Execution);
            } else if let Some(kind) = stall {
                stats.breakdown.charge(kind);
            } else {
                stats.breakdown.charge(StallKind::FrontEnd);
            }
            now += 1;

            // Event-driven quiescence fast-forward: when fetch is idle
            // and the head of the issue queue is provably blocked on a
            // known-latency event, skip ahead to the earliest wake point,
            // charging every skipped cycle exactly as the polled loop
            // would have. Bit-for-bit identical stats by construction.
            if self.tick == TickMode::EventDriven && !halted {
                if let Some(fetch_wake) = fetch.quiescent_until(now) {
                    // The third tuple element is issue-select visits per
                    // skipped cycle: a live stalled head is examined once
                    // every polled cycle, a drained or not-yet-fetched head
                    // is never examined.
                    let window = match fetch.get(fetch.head_seq()) {
                        None => Some((u64::MAX, StallKind::FrontEnd, 0)),
                        Some(e) if e.fetched_at > now => {
                            Some((e.fetched_at, StallKind::FrontEnd, 0))
                        }
                        Some(e) => {
                            let inst = program.inst(e.pc).expect("fetched pc is valid");
                            match operand_stall(inst, &sb, now) {
                                // The stall *kind* may change once the
                                // earliest operand readies: wake at the
                                // min crossing and re-evaluate there.
                                Some(kind) => operand_wake(inst, &sb, now).map(|w| (w, kind, 1)),
                                // Blocked purely on an occupied
                                // unpipelined FP unit.
                                None if !fu.can_issue_fresh(inst, now) => {
                                    Some((fu.next_fp_release(now), StallKind::Other, 1))
                                }
                                // Would issue (or needs a memory access,
                                // which mutates hierarchy stats): poll.
                                None => None,
                            }
                        }
                    };
                    if let Some((target, kind, visits)) = window {
                        let wake =
                            target.min(fetch_wake).min(mem.next_mshr_fill(now)).min(cycle_cap);
                        if wake > now {
                            stats.breakdown.charge_n(kind, wake - now);
                            activity.select_visits += visits * (wake - now);
                            now = wake;
                        }
                    }
                }
            }
        }

        stats.cycles = now;
        activity.cycles = now;
        Ok(RunResult { stats, activity, mem_stats: mem.final_stats(), final_state: state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_compiler::{compile, CompilerOptions};
    use ff_isa::interp::Interpreter;
    use ff_isa::{Inst, MemoryImage, Program, Reg};

    fn run_model(p: &Program, mem: MemoryImage) -> RunResult {
        let case = SimCase::new(p, mem);
        InOrder::new(MachineConfig::default()).run(&case)
    }

    fn check_against_interpreter(p: &Program, mem: MemoryImage) -> RunResult {
        let r = run_model(p, mem.clone());
        let mut s = ArchState::new();
        s.mem = mem;
        let mut i = Interpreter::with_state(p, s);
        i.run(10_000_000).unwrap();
        assert!(
            r.final_state.semantically_eq(i.state()),
            "in-order final state diverges from interpreter"
        );
        assert_eq!(r.stats.retired, i.retired());
        r
    }

    /// Sum an in-memory array with a counted loop.
    fn sum_loop(n: i64) -> (Program, MemoryImage) {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x1000));
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(n));
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)));
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)));
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
        p.push(b2, Inst::new(Op::Halt));
        let compiled = compile(&p, &CompilerOptions::default());
        let mut mem = MemoryImage::new();
        for i in 0..n as u64 {
            mem.store(0x1000 + i * 8, i + 1);
        }
        (compiled, mem)
    }

    #[test]
    fn matches_interpreter_on_sum_loop() {
        let (p, mem) = sum_loop(50);
        let r = check_against_interpreter(&p, mem);
        assert_eq!(r.final_state.int(3), 50 * 51 / 2);
        assert!(r.stats.cycles > 0);
    }

    #[test]
    fn attribution_covers_every_cycle() {
        let (p, mem) = sum_loop(100);
        let r = run_model(&p, mem);
        assert_eq!(r.stats.breakdown.total(), r.stats.cycles);
    }

    #[test]
    fn cold_misses_produce_load_stalls() {
        let (p, mem) = sum_loop(200);
        let r = run_model(&p, mem);
        assert!(r.stats.breakdown.load > 0, "expected load-use stalls: {:?}", r.stats);
    }

    #[test]
    fn one_group_per_cycle_limits_ipc() {
        // Ten single-instruction groups of independent moves: the baseline
        // needs >= 10 issue cycles even though all are independent.
        let mut p = Program::new();
        let b = p.add_block();
        for i in 1..=10 {
            p.push(b, Inst::new(Op::MovImm).dst(Reg::int(i)).imm(i as i64).stop());
        }
        p.push(b, Inst::new(Op::Halt).stop());
        let r = run_model(&p, MemoryImage::new());
        assert!(r.stats.cycles >= 11, "cycles = {}", r.stats.cycles);
    }

    #[test]
    fn grouped_code_is_faster_than_serial_groups() {
        // The same ten moves packed by the compiler into 6-wide groups
        // should finish in fewer cycles.
        let mut serial = Program::new();
        let b = serial.add_block();
        for i in 1..=10 {
            serial.push(b, Inst::new(Op::MovImm).dst(Reg::int(i)).imm(i as i64).stop());
        }
        serial.push(b, Inst::new(Op::Halt).stop());

        let mut packed_src = Program::new();
        let b = packed_src.add_block();
        for i in 1..=10 {
            packed_src.push(b, Inst::new(Op::MovImm).dst(Reg::int(i)).imm(i as i64));
        }
        packed_src.push(b, Inst::new(Op::Halt));
        let packed = compile(&packed_src, &CompilerOptions::default());

        let rs = run_model(&serial, MemoryImage::new());
        let rp = run_model(&packed, MemoryImage::new());
        assert!(
            rp.stats.cycles < rs.stats.cycles,
            "packed {} !< serial {}",
            rp.stats.cycles,
            rs.stats.cycles
        );
    }

    #[test]
    fn cycle_budget_watchdog_aborts_long_runs() {
        let (p, mem) = sum_loop(200);
        let case = SimCase::new(&p, mem.clone()).with_cycle_budget(10);
        let err = InOrder::new(MachineConfig::default()).try_run(&case).unwrap_err();
        assert!(matches!(err, RunError::CycleBudgetExceeded { limit: 10, .. }), "{err}");
        // A generous budget changes nothing.
        let full = run_model(&p, mem.clone());
        let case = SimCase::new(&p, mem).with_cycle_budget(full.stats.cycles + 1);
        let ok = InOrder::new(MachineConfig::default()).try_run(&case).unwrap();
        assert_eq!(ok.stats, full.stats);
    }

    #[test]
    fn branchy_code_trains_predictor() {
        let (p, mem) = sum_loop(500);
        let r = run_model(&p, mem);
        assert!(r.stats.branches >= 500);
        // A counted loop is highly predictable once trained.
        assert!(r.stats.mispredict_rate() < 0.10, "mispredict rate {}", r.stats.mispredict_rate());
    }

    #[test]
    fn multicycle_ops_attribute_other_stalls() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(7).stop());
        // Long chain of dependent divides.
        for _ in 0..5 {
            p.push(b, Inst::new(Op::Div).dst(Reg::int(1)).src(Reg::int(1)).src(Reg::int(1)).stop());
        }
        p.push(b, Inst::new(Op::Halt).stop());
        let r = run_model(&p, MemoryImage::new());
        assert!(r.stats.breakdown.other > 50, "other stalls = {:?}", r.stats.breakdown);
    }

    #[test]
    fn waw_scoreboarding_stalls_output_dependence() {
        // load r1 (miss); then movimm r1 must wait for the load's writeback
        // (§3.5) even though it has no input dependence.
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(0x8000).stop());
        p.push(b, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(2)).stop());
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(5).stop());
        p.push(b, Inst::new(Op::Halt).stop());
        let r = run_model(&p, MemoryImage::new());
        // The cold miss costs ~145 cycles and the WAW write must wait.
        assert!(r.stats.cycles > 140, "cycles = {}", r.stats.cycles);
        assert_eq!(r.final_state.int(1), 5);
    }
}
