//! One function per table/figure of the paper.

use ff_engine::Activity;
use ff_engine::MachineConfig;
use ff_power::Table1Row;
use ff_workloads::Scale;

use crate::suite::{HierKind, ModelKind, ResultSource, Suite};

/// Figure 6: normalized execution cycles with the four-way stall breakdown
/// for baseline, multipass, and idealized out-of-order.
#[derive(Clone, Debug)]
pub struct Figure6 {
    /// One row per benchmark.
    pub rows: Vec<Figure6Row>,
}

/// Per-benchmark Figure 6 data. All cycle categories are normalized to the
/// baseline's total cycles.
#[derive(Clone, Debug)]
pub struct Figure6Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Normalized (execution, front-end, other, load) for each model.
    pub base: [f64; 4],
    /// Multipass breakdown (normalized to baseline total).
    pub mp: [f64; 4],
    /// Out-of-order breakdown (normalized to baseline total).
    pub ooo: [f64; 4],
}

impl Figure6Row {
    /// Total normalized cycles of one model's breakdown.
    pub fn total(b: &[f64; 4]) -> f64 {
        b.iter().sum()
    }
}

impl Figure6 {
    /// Arithmetic-mean speedup of multipass over the baseline.
    pub fn mp_speedup(&self) -> f64 {
        mean(self.rows.iter().map(|r| 1.0 / Figure6Row::total(&r.mp)))
    }

    /// Arithmetic-mean speedup of out-of-order over multipass.
    pub fn ooo_over_mp(&self) -> f64 {
        mean(self.rows.iter().map(|r| Figure6Row::total(&r.mp) / Figure6Row::total(&r.ooo)))
    }

    /// Mean reduction in total stall cycles (everything but execution)
    /// achieved by multipass, as a fraction of baseline stalls.
    pub fn mp_stall_reduction(&self) -> f64 {
        mean(self.rows.iter().map(|r| {
            let base_stall = Figure6Row::total(&r.base) - r.base[0];
            let mp_stall = Figure6Row::total(&r.mp) - r.mp[0];
            if base_stall > 0.0 {
                1.0 - mp_stall / base_stall
            } else {
                0.0
            }
        }))
    }

    /// Per-benchmark reduction in *load* stall cycles.
    pub fn load_stall_reduction(&self, bench: &str) -> f64 {
        let r = self.rows.iter().find(|r| r.bench == bench).expect("unknown benchmark");
        if r.base[3] > 0.0 {
            1.0 - r.mp[3] / r.base[3]
        } else {
            0.0
        }
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn breakdown(result: &ff_engine::RunResult, norm: f64) -> [f64; 4] {
    let b = &result.stats.breakdown;
    [
        b.execution as f64 / norm,
        b.front_end as f64 / norm,
        b.other as f64 / norm,
        b.load as f64 / norm,
    ]
}

/// Runs the Figure 6 experiment over any result source (the serial
/// [`Suite`] or a campaign artifact store).
pub fn figure6<S: ResultSource + ?Sized>(suite: &mut S) -> Figure6 {
    let benches = suite.benchmarks();
    let mut rows = Vec::new();
    for bench in benches {
        let base = suite.result(ModelKind::InOrder, HierKind::Base, bench).clone();
        let norm = base.stats.cycles as f64;
        let mp = suite.result(ModelKind::Multipass, HierKind::Base, bench).clone();
        let ooo = suite.result(ModelKind::Ooo, HierKind::Base, bench).clone();
        rows.push(Figure6Row {
            bench,
            base: breakdown(&base, norm),
            mp: breakdown(&mp, norm),
            ooo: breakdown(&ooo, norm),
        });
    }
    Figure6 { rows }
}

/// Figure 7: multipass and out-of-order speedups over in-order for the
/// three cache hierarchies.
#[derive(Clone, Debug)]
pub struct Figure7 {
    /// One entry per hierarchy, in paper order (base, config1, config2).
    pub configs: Vec<Figure7Config>,
}

/// Speedups under one hierarchy.
#[derive(Clone, Debug)]
pub struct Figure7Config {
    /// Hierarchy name.
    pub name: &'static str,
    /// Per-benchmark `(bench, mp_speedup, ooo_speedup)`.
    pub rows: Vec<(&'static str, f64, f64)>,
}

impl Figure7Config {
    /// Mean multipass speedup under this hierarchy.
    pub fn mean_mp(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.1))
    }

    /// Mean out-of-order speedup under this hierarchy.
    pub fn mean_ooo(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.2))
    }

    /// The MP:OOO gap (1.0 = parity).
    pub fn gap(&self) -> f64 {
        self.mean_ooo() / self.mean_mp()
    }
}

/// Runs the Figure 7 experiment.
pub fn figure7<S: ResultSource + ?Sized>(suite: &mut S) -> Figure7 {
    let benches = suite.benchmarks();
    let mut configs = Vec::new();
    for hier in [HierKind::Base, HierKind::Config1, HierKind::Config2] {
        let mut rows = Vec::new();
        for bench in &benches {
            let base = suite.cycles(ModelKind::InOrder, hier, bench) as f64;
            let mp = suite.cycles(ModelKind::Multipass, hier, bench) as f64;
            let ooo = suite.cycles(ModelKind::Ooo, hier, bench) as f64;
            rows.push((*bench, base / mp, base / ooo));
        }
        configs.push(Figure7Config { name: hier.name(), rows });
    }
    Figure7 { configs }
}

/// Figure 8: the percentage of the full multipass speedup retained when
/// one of the two key mechanisms is disabled.
#[derive(Clone, Debug)]
pub struct Figure8 {
    /// Per-benchmark `(bench, pct_without_regrouping, pct_without_restart)`.
    pub rows: Vec<(&'static str, f64, f64)>,
}

/// Runs the Figure 8 ablation.
pub fn figure8<S: ResultSource + ?Sized>(suite: &mut S) -> Figure8 {
    let benches = suite.benchmarks();
    let mut rows = Vec::new();
    for bench in benches {
        let base = suite.cycles(ModelKind::InOrder, HierKind::Base, bench) as f64;
        let full = suite.cycles(ModelKind::Multipass, HierKind::Base, bench) as f64;
        let noregroup = suite.cycles(ModelKind::MpNoRegroup, HierKind::Base, bench) as f64;
        let norestart = suite.cycles(ModelKind::MpNoRestart, HierKind::Base, bench) as f64;
        let full_speedup = base / full - 1.0;
        let pct = |cycles: f64| {
            let s = base / cycles - 1.0;
            if full_speedup > 1e-9 {
                100.0 * s / full_speedup
            } else {
                100.0
            }
        };
        rows.push((bench, pct(noregroup), pct(norestart)));
    }
    Figure8 { rows }
}

/// §5.2: multipass vs the realistic decentralized out-of-order design.
#[derive(Clone, Debug)]
pub struct RealisticOooResult {
    /// Per-benchmark `(bench, mp_speedup_over_realistic_ooo)`.
    pub rows: Vec<(&'static str, f64)>,
}

impl RealisticOooResult {
    /// Mean multipass speedup over the realistic out-of-order design
    /// (the paper reports 1.05×).
    pub fn mean(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.1))
    }
}

/// Runs the realistic-OOO comparison.
pub fn realistic_ooo<S: ResultSource + ?Sized>(suite: &mut S) -> RealisticOooResult {
    let benches = suite.benchmarks();
    let rows = benches
        .into_iter()
        .map(|bench| {
            let real = suite.cycles(ModelKind::OooRealistic, HierKind::Base, bench) as f64;
            let mp = suite.cycles(ModelKind::Multipass, HierKind::Base, bench) as f64;
            (bench, real / mp)
        })
        .collect();
    RealisticOooResult { rows }
}

/// §5.4: Dundas–Mudge runahead "only reduced half as many cycles as
/// multipass relative to in-order".
#[derive(Clone, Debug)]
pub struct RunaheadResult {
    /// Per-benchmark `(bench, runahead_cycle_reduction, mp_cycle_reduction)`
    /// as fractions of baseline cycles.
    pub rows: Vec<(&'static str, f64, f64)>,
}

impl RunaheadResult {
    /// Ratio of mean runahead cycle reduction to mean multipass cycle
    /// reduction (the paper's "half").
    pub fn reduction_ratio(&self) -> f64 {
        let ra = mean(self.rows.iter().map(|r| r.1));
        let mp = mean(self.rows.iter().map(|r| r.2));
        if mp > 1e-12 {
            ra / mp
        } else {
            0.0
        }
    }
}

/// Runs the runahead comparison.
pub fn runahead_compare<S: ResultSource + ?Sized>(suite: &mut S) -> RunaheadResult {
    let benches = suite.benchmarks();
    let rows = benches
        .into_iter()
        .map(|bench| {
            let base = suite.cycles(ModelKind::InOrder, HierKind::Base, bench) as f64;
            let ra = suite.cycles(ModelKind::Runahead, HierKind::Base, bench) as f64;
            let mp = suite.cycles(ModelKind::Multipass, HierKind::Base, bench) as f64;
            (bench, (base - ra) / base, (base - mp) / base)
        })
        .collect();
    RunaheadResult { rows }
}

/// Table 1: power ratios computed from the aggregate activity of the
/// Figure 6 out-of-order and multipass runs.
pub fn table1_experiment<S: ResultSource + ?Sized>(suite: &mut S) -> Vec<Table1Row> {
    let benches = suite.benchmarks();
    let mut ooo_act = Activity::new();
    let mut mp_act = Activity::new();
    for bench in benches {
        ooo_act += suite.result(ModelKind::Ooo, HierKind::Base, bench).activity;
        mp_act += suite.result(ModelKind::Multipass, HierKind::Base, bench).activity;
    }
    ff_power::table1(&ooo_act, &mp_act)
}

/// Table 2: the experimental machine configuration rows.
pub fn table2() -> Vec<(String, String)> {
    MachineConfig::itanium2_base().table2_rows()
}

/// Convenience: builds a suite and runs Figure 6 (the headline experiment).
pub fn figure6_at(scale: Scale) -> Figure6 {
    figure6(&mut Suite::new(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> Suite {
        Suite::new(Scale::Test)
    }

    #[test]
    fn figure6_has_twelve_normalized_rows() {
        let f = figure6(&mut suite());
        assert_eq!(f.rows.len(), 12);
        for r in &f.rows {
            let total = Figure6Row::total(&r.base);
            assert!((total - 1.0).abs() < 1e-9, "{}: base not normalized: {total}", r.bench);
            assert!(Figure6Row::total(&r.mp) > 0.0);
            assert!(Figure6Row::total(&r.ooo) > 0.0);
        }
    }

    #[test]
    fn figure6_ordering_holds_even_at_test_scale() {
        let f = figure6(&mut suite());
        // MP should on average beat the baseline; OOO should beat MP.
        assert!(f.mp_speedup() > 1.0, "MP mean speedup {}", f.mp_speedup());
        assert!(f.ooo_over_mp() > 0.9, "OOO/MP {}", f.ooo_over_mp());
    }

    #[test]
    fn figure8_percentages_are_sane() {
        let f = figure8(&mut suite());
        for (bench, noregroup, norestart) in &f.rows {
            assert!((-150.0..=180.0).contains(noregroup), "{bench} noregroup {noregroup}");
            assert!((-150.0..=180.0).contains(norestart), "{bench} norestart {norestart}");
        }
    }

    #[test]
    fn table1_has_three_rows() {
        let rows = table1_experiment(&mut suite());
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.peak_ratio > 0.0 && r.average_ratio > 0.0));
    }

    #[test]
    fn table2_matches_paper_values() {
        let rows = table2();
        assert!(rows.iter().any(|(k, v)| k == "Main Memory" && v == "145 cycles"));
        assert!(rows.iter().any(|(k, v)| k == "Multipass Instruction Queue" && v == "256 entry"));
    }
}
