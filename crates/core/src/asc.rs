//! The advance store cache (ASC) of paper §3.6.
//!
//! A small, low-associativity cache that forwards advance-store data to
//! subsequent advance loads within one pass. Unlike an out-of-order
//! processor's content-addressable store queue, the ASC tolerates a very
//! large window of in-flight memory instructions by *allowing information
//! loss*: when a set replaces an entry, later loads that miss in that set
//! can no longer be proven consistent and become **data speculative**. The
//! ASC is cleared at the start of every advance pass.

/// A value forwarded by the ASC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AscData {
    /// The forwarded store data (with its data-speculation taint).
    Valid {
        /// Store data.
        value: u64,
        /// Whether the store's data was derived from a data-speculative
        /// load (taint propagates to the forwarded value).
        tainted: bool,
        /// Sequence number of the inserting store. A hit only proves
        /// consistency back to this point: an intervening *deferred*
        /// store (unknown address) younger than `seq` may alias the
        /// word, so such hits must be treated as data speculative.
        seq: u64,
    },
    /// The store producing this address had an invalid (deferred) data
    /// operand — any load reading it is itself invalid this pass.
    Invalid,
}

/// Result of an ASC lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AscLookup {
    /// An advance store to this word is present.
    Hit(AscData),
    /// No entry; no replacement has occurred in this set, so the ordinary
    /// cache hierarchy value is trustworthy.
    Miss,
    /// No entry, but this set has replaced entries this pass — the load
    /// must be marked data speculative (S-bit).
    MissAfterReplacement,
}

/// The advance store cache: word-granular, set-associative, FIFO
/// replacement within a set, with per-set replacement tracking.
#[derive(Clone, Debug)]
pub struct AdvanceStoreCache {
    assoc: usize,
    sets: Vec<Vec<(u64, AscData)>>,
    replaced: Vec<bool>,
    inserts: u64,
    replacements: u64,
}

impl AdvanceStoreCache {
    /// Creates an ASC with `entries` total capacity and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `assoc >= 1` and `entries` is a positive multiple of
    /// `assoc`.
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(assoc >= 1 && entries > 0 && entries.is_multiple_of(assoc));
        let num_sets = entries / assoc;
        AdvanceStoreCache {
            assoc,
            sets: vec![Vec::new(); num_sets],
            replaced: vec![false; num_sets],
            inserts: 0,
            replacements: 0,
        }
    }

    fn set_index(&self, word_addr: u64) -> usize {
        ((word_addr >> 3) % self.sets.len() as u64) as usize
    }

    /// Records an advance store to the word containing `addr`.
    pub fn insert(&mut self, addr: u64, data: AscData) {
        let word = ff_isa::MemoryImage::word_addr(addr);
        let set = self.set_index(word);
        self.inserts += 1;
        let ways = &mut self.sets[set];
        if let Some(e) = ways.iter_mut().find(|(w, _)| *w == word) {
            e.1 = data; // newer store to the same word wins
            return;
        }
        ways.push((word, data));
        if ways.len() > self.assoc {
            ways.remove(0); // FIFO within the set
            self.replaced[set] = true;
            self.replacements += 1;
        }
    }

    /// Looks up the word containing `addr`.
    pub fn lookup(&self, addr: u64) -> AscLookup {
        let word = ff_isa::MemoryImage::word_addr(addr);
        let set = self.set_index(word);
        if let Some((_, d)) = self.sets[set].iter().find(|(w, _)| *w == word) {
            AscLookup::Hit(*d)
        } else if self.replaced[set] {
            AscLookup::MissAfterReplacement
        } else {
            AscLookup::Miss
        }
    }

    /// Clears all entries and replacement flags (start of an advance pass).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.replaced.fill(false);
    }

    /// Live entries across all sets.
    pub fn live_entries(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.assoc
    }

    /// Whether every set holds at most `assoc` entries — the structural
    /// capacity invariant audited by the ASC sentinel.
    pub fn assoc_ok(&self) -> bool {
        self.sets.iter().all(|s| s.len() <= self.assoc)
    }

    /// Total inserts over the run.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Total replacements (information-loss events) over the run.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(v: u64) -> AscData {
        AscData::Valid { value: v, tainted: false, seq: 0 }
    }

    #[test]
    fn forwards_store_data() {
        let mut asc = AdvanceStoreCache::new(64, 2);
        asc.insert(0x100, valid(7));
        assert_eq!(asc.lookup(0x100), AscLookup::Hit(valid(7)));
        assert_eq!(asc.lookup(0x104), AscLookup::Hit(valid(7)), "same word");
        assert_eq!(asc.lookup(0x108), AscLookup::Miss);
    }

    #[test]
    fn newer_store_overwrites() {
        let mut asc = AdvanceStoreCache::new(64, 2);
        asc.insert(0x100, valid(1));
        asc.insert(0x100, valid(2));
        assert_eq!(asc.lookup(0x100), AscLookup::Hit(valid(2)));
    }

    #[test]
    fn invalid_store_data_poisons_loads() {
        let mut asc = AdvanceStoreCache::new(64, 2);
        asc.insert(0x200, AscData::Invalid);
        assert_eq!(asc.lookup(0x200), AscLookup::Hit(AscData::Invalid));
    }

    #[test]
    fn replacement_marks_set_speculative() {
        let mut asc = AdvanceStoreCache::new(4, 2); // 2 sets of 2 ways
                                                    // Three distinct words in the same set (stride = 2 words).
        asc.insert(0x00, valid(1));
        asc.insert(0x10, valid(2));
        assert_eq!(asc.lookup(0x20), AscLookup::Miss);
        asc.insert(0x20, valid(3)); // evicts 0x00 (FIFO)
        assert_eq!(asc.lookup(0x00), AscLookup::MissAfterReplacement);
        assert_eq!(asc.lookup(0x10), AscLookup::Hit(valid(2)));
        // The *other* set is unaffected.
        assert_eq!(asc.lookup(0x08), AscLookup::Miss);
        assert_eq!(asc.replacements(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut asc = AdvanceStoreCache::new(4, 2);
        asc.insert(0x00, valid(1));
        asc.insert(0x10, valid(2));
        asc.insert(0x20, valid(3));
        asc.clear();
        assert_eq!(asc.lookup(0x00), AscLookup::Miss);
        assert_eq!(asc.lookup(0x10), AscLookup::Miss);
    }

    #[test]
    fn taint_travels_with_data() {
        let mut asc = AdvanceStoreCache::new(64, 2);
        asc.insert(0x300, AscData::Valid { value: 9, tainted: true, seq: 42 });
        match asc.lookup(0x300) {
            AscLookup::Hit(AscData::Valid { value, tainted, seq }) => {
                assert_eq!(value, 9);
                assert!(tainted);
                assert_eq!(seq, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
