//! Multipass-specific configuration and ablation switches.

use ff_engine::MachineConfig;

/// How advance-execution restart (paper §3.3) is triggered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartStrategy {
    /// Compiler-inserted `RESTART` markers after critical-SCC loads — the
    /// mechanism used for the paper's results.
    Compiler,
    /// Hardware detection (the paper's footnote 1: "a hardware mechanism
    /// could also have been used"): restart once this many *consecutive*
    /// advance slots were deferred, i.e. "the vast majority of subsequent
    /// preexecution" is being wasted.
    Hardware {
        /// Consecutive deferred slots that trigger a restart.
        consecutive_deferrals: u32,
    },
    /// No advance restart (the Figure 8 ablation).
    Disabled,
}

/// Configuration of the multipass pipeline, wrapping the base
/// [`MachineConfig`] with the structures of the paper's §3/§4 and the two
/// ablation switches evaluated in Figure 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultipassConfig {
    /// Base machine parameters (Table 2).
    pub machine: MachineConfig,
    /// Advance-store-cache capacity in entries (Table 1: 64).
    pub asc_entries: usize,
    /// Advance-store-cache associativity (Table 1: 2-way).
    pub asc_assoc: usize,
    /// Speculative-memory-address-queue capacity (Table 1: 128 entries).
    /// Memory instructions beyond this many in-flight advance entries are
    /// deferred to a later pass.
    pub smaq_entries: usize,
    /// Pipeline-flush penalty for a value-misspeculation (S-bit mismatch).
    pub flush_penalty: u64,
    /// Enable issue regrouping (§3.2). Disabled for the Figure 8 ablation.
    pub enable_regrouping: bool,
    /// How advance restart (§3.3) is triggered.
    pub restart: RestartStrategy,
    /// §3.5 WAW policy: when true (the paper's design), advance loads that
    /// miss the L1 skip the SRF write-back and defer their consumers to a
    /// later pass. When false, they write the SRF with their (future)
    /// completion time — the idealized "more complexity" alternative the
    /// paper mentions, which lets same-pass consumers wait instead of
    /// deferring.
    pub waw_skip_srf: bool,
    /// Testing hook for the `ff-debug` triage tooling: when set to `N`,
    /// the `N`-th result-store merge of a preserved value (0-based, counted
    /// by `rs_reuses`) XORs the merged value with 1, silently corrupting
    /// architectural state. `None` (the default) disables the fault.
    pub fault_corrupt_rs_merge: Option<u64>,
    /// Fault-injection hook (`ff-sentinel`): the `N`-th architectural load
    /// wakeup (0-based) is dropped — its destination register is marked
    /// pending essentially forever, wedging every consumer. Models a lost
    /// fill notification.
    pub fault_drop_wakeup: Option<u64>,
    /// Fault-injection hook (`ff-sentinel`): the `N`-th data read's
    /// completion cycle is warped far past any legal hierarchy latency
    /// (see `ff_mem::MemorySystem::inject_warp_latency`).
    pub fault_warp_cache_latency: Option<u64>,
    /// Fault-injection hook (`ff-sentinel`): the `N`-th MSHR allocation is
    /// never deallocated (see `ff_mem::MshrFile::inject_lost_dealloc`).
    pub fault_lose_mshr_dealloc: Option<u64>,
    /// Fault-injection hook (`ff-sentinel`): the `N`-th advance-store-cache
    /// forward whose data-speculation (S) bit should be set forwards the
    /// value *without* it — reintroducing the stale-forwarding bug class
    /// where rally merges an unverified value.
    pub fault_stale_asc_forward: Option<u64>,
    /// Fault-injection hook (`ff-sentinel`): the `N`-th execution-op
    /// wakeup insertion (0-based, counted over architectural multi-cycle
    /// result writebacks) is dropped — the destination register's
    /// scoreboard entry is wedged essentially forever. Models a lost
    /// insertion into a wakeup-driven ready structure: consumers of the
    /// register never transition back to ready.
    pub fault_drop_ready_insert: Option<u64>,
}

impl MultipassConfig {
    /// The paper's configuration on the Table 2 machine.
    pub fn new(machine: MachineConfig) -> Self {
        MultipassConfig {
            machine,
            asc_entries: 64,
            asc_assoc: 2,
            smaq_entries: 128,
            flush_penalty: machine.mispredict_penalty,
            enable_regrouping: true,
            restart: RestartStrategy::Compiler,
            waw_skip_srf: true,
            fault_corrupt_rs_merge: None,
            fault_drop_wakeup: None,
            fault_warp_cache_latency: None,
            fault_lose_mshr_dealloc: None,
            fault_stale_asc_forward: None,
            fault_drop_ready_insert: None,
        }
    }

    /// Figure 8 ablation: multipass without issue regrouping.
    pub fn without_regrouping(machine: MachineConfig) -> Self {
        MultipassConfig { enable_regrouping: false, ..Self::new(machine) }
    }

    /// Figure 8 ablation: multipass without advance restart.
    pub fn without_restart(machine: MachineConfig) -> Self {
        MultipassConfig { restart: RestartStrategy::Disabled, ..Self::new(machine) }
    }

    /// §3.5 alternative: advance loads that miss the L1 still write the
    /// SRF ("requiring more complexity"). Measurably *slower* than the
    /// paper's skip-SRF policy on chase-heavy workloads: same-pass
    /// consumers then wait on the in-flight value, blocking the in-order
    /// advance pipe instead of being deferred past.
    pub fn with_ideal_waw(machine: MachineConfig) -> Self {
        MultipassConfig { waw_skip_srf: false, ..Self::new(machine) }
    }

    /// Footnote 1 variant: hardware-detected advance restart instead of
    /// compiler markers.
    pub fn with_hardware_restart(machine: MachineConfig, consecutive_deferrals: u32) -> Self {
        MultipassConfig {
            restart: RestartStrategy::Hardware { consecutive_deferrals },
            ..Self::new(machine)
        }
    }
}

impl Default for MultipassConfig {
    fn default() -> Self {
        Self::new(MachineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MultipassConfig::default();
        assert_eq!(c.asc_entries, 64);
        assert_eq!(c.asc_assoc, 2);
        assert_eq!(c.smaq_entries, 128);
        assert!(c.enable_regrouping);
        assert_eq!(c.restart, RestartStrategy::Compiler);
        assert_eq!(c.machine.multipass_iq, 256);
    }

    #[test]
    fn ablations_flip_one_switch() {
        let m = MachineConfig::default();
        let a = MultipassConfig::without_regrouping(m);
        assert!(!a.enable_regrouping);
        assert_eq!(a.restart, RestartStrategy::Compiler);
        let b = MultipassConfig::without_restart(m);
        assert!(b.enable_regrouping);
        assert_eq!(b.restart, RestartStrategy::Disabled);
        let h = MultipassConfig::with_hardware_restart(m, 12);
        assert_eq!(h.restart, RestartStrategy::Hardware { consecutive_deferrals: 12 });
    }
}
