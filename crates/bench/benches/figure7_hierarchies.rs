//! Regenerates Figure 7: multipass and out-of-order speedups over the
//! in-order baseline for the three cache hierarchies (base, config1 with
//! 200-cycle memory, and the smaller/slower config2).

use std::time::Instant;

use ff_bench::scale_from_env;
use ff_experiments::{figure7, render, Suite};

fn main() {
    let scale = scale_from_env();
    let t0 = Instant::now();
    let mut suite = Suite::new(scale);
    let f = figure7(&mut suite);
    println!("=== Figure 7: speedups across cache hierarchies ({scale:?} scale) ===\n");
    println!("{}", render::figure7(&f));
    if let Some(path) = ff_experiments::csv::write_if_configured(
        "figure7_hierarchies",
        &ff_experiments::csv::figure7(&f),
    ) {
        println!("csv written to {}", path.display());
    }
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
