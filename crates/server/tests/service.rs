//! End-to-end HTTP tests: a real `Server` on an ephemeral port, driven
//! through the same `ff_harness::remote` client the CLI uses, running
//! real simulations at test scale — plus the transport-hardening
//! scenarios: hash-shape validation, oversized-body rejection,
//! load-shedding, retry-through-reset, and crash-damaged restarts.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ff_experiments::{HierKind, ModelKind};
use ff_harness::campaign::{attempt_job, ExecOptions, JobContext, JobFilter};
use ff_harness::job::{JobKind, JobSpec};
use ff_harness::json::Json;
use ff_harness::remote::{
    campaign_status, fetch_artifact, http_get, http_request, submit_campaign, CampaignRequest,
    ServerUrl,
};
use ff_server::{Scheduler, SchedulerOptions, Server, CAMPAIGNS_DIR};
use ff_workloads::Scale;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ff-server-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start(store: &std::path::Path) -> (Server, ServerUrl) {
    let opts = SchedulerOptions { workers: 2, ..SchedulerOptions::default() };
    let server = Server::start("127.0.0.1:0", store, opts).expect("server starts");
    let url = ServerUrl::parse(&server.addr().to_string()).expect("addr parses");
    (server, url)
}

fn tiny_request() -> CampaignRequest {
    CampaignRequest {
        scale: Scale::Test,
        filter: JobFilter {
            models: vec![ModelKind::InOrder],
            hiers: vec![HierKind::Base],
            benches: vec!["gzip".to_string(), "mcf".to_string()],
            seeds: vec![0],
        },
        reports: false,
    }
}

fn wait_done(url: &ServerUrl, id: &str) -> ff_harness::remote::CampaignStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = campaign_status(url, id).expect("status");
        if status.done {
            return status;
        }
        assert!(Instant::now() < deadline, "campaign {id} did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn counter(url: &ServerUrl, name: &str) -> u64 {
    let body = http_get(url, "/healthz").expect("healthz");
    let doc = Json::parse(&body).expect("healthz JSON");
    doc.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

#[test]
fn http_submission_memoizes_and_serves_byte_identical_artifacts() {
    let store = temp_dir("memo");
    let (server, url) = start(&store);

    let request = tiny_request();
    let (first, total) = submit_campaign(&url, &request).expect("submit");
    assert_eq!(total, 2);
    let status = wait_done(&url, &first);
    assert_eq!(status.counts.get("ok"), Some(&2), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 2);

    // Every artifact the server serves must be byte-identical to what a
    // direct in-process run of the same job produces.
    let mut ctx = JobContext::new();
    let exec = ExecOptions::default();
    for job in &status.jobs {
        let served = fetch_artifact(&url, &job.hash).expect("fetch");
        let spec =
            request.expand().into_iter().find(|s| s.id() == job.id).expect("job spec in expansion");
        let direct = attempt_job(&mut ctx, &spec, &exec, None).result.expect("direct run");
        assert_eq!(served, direct, "artifact for {} must match a direct run", job.id);
    }

    // Resubmitting the identical request is a fresh campaign that costs
    // zero simulations: every job is a memo hit.
    let (second, _) = submit_campaign(&url, &request).expect("resubmit");
    assert_ne!(first, second);
    let status = wait_done(&url, &second);
    assert_eq!(status.counts.get("hit"), Some(&2), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 2, "resubmission must not simulate");
    assert_eq!(counter(&url, "hits"), 2);

    server.shutdown();
}

#[test]
fn unknown_routes_and_bad_requests_report_json_errors() {
    let store = temp_dir("errors");
    let (server, url) = start(&store);

    let (code, body) = http_request(&url, "GET", "/nope", None).expect("request");
    assert_eq!(code, 404);
    assert!(body.contains("error"), "body: {body}");

    let (code, _) = http_request(&url, "GET", "/campaigns/c999", None).expect("request");
    assert_eq!(code, 404);

    let (code, _) = http_request(&url, "GET", "/jobs/not-hex", None).expect("request");
    assert_eq!(code, 400);

    let (code, _) =
        http_request(&url, "POST", "/campaigns", Some("{\"scale\": \"bogus\"}")).expect("request");
    assert_eq!(code, 400);

    let (code, _) = http_request(&url, "DELETE", "/campaigns", None).expect("request");
    assert_eq!(code, 405);

    server.shutdown();
}

#[test]
fn shutdown_checkpoints_and_a_restarted_server_resumes_from_the_store() {
    let store = temp_dir("restart");
    let (server, url) = start(&store);
    let request = tiny_request();
    let (id, _) = submit_campaign(&url, &request).expect("submit");
    wait_done(&url, &id);
    server.shutdown();

    let manifest = store.join(CAMPAIGNS_DIR).join(&id).join("manifest.json");
    assert!(manifest.exists(), "graceful shutdown must write a checkpoint manifest");

    // The restarted server resumes the checkpointed campaign under its
    // original id; the artifacts already published make every job a memo
    // hit, so the resume costs zero simulations.
    let (server, url) = start(&store);
    let status = wait_done(&url, &id);
    assert_eq!(status.counts.get("hit"), Some(&2), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 0, "resume must not re-simulate");
    server.shutdown();
}

#[test]
fn the_server_memoizes_artifacts_published_by_a_direct_cli_style_run() {
    let store = temp_dir("cross");
    let request = tiny_request();

    // Simulate the jobs "by hand" into the store first — the equivalent
    // of a past `ff-campaign run --out <store>`.
    let direct = Scheduler::start(
        ff_harness::store::ShardedStore::open(&store).expect("store"),
        SchedulerOptions { workers: 2, ..SchedulerOptions::default() },
    );
    let (id, _) = direct.submit(&request).expect("submit");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !matches!(direct.status(&id).and_then(|s| s.get("done").cloned()), Some(Json::Bool(true)))
    {
        assert!(Instant::now() < deadline, "direct campaign did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
    direct.shutdown();
    // Drop the campaign ledger so only the artifacts remain.
    std::fs::remove_dir_all(store.join(CAMPAIGNS_DIR)).expect("clear campaigns");

    let (server, url) = start(&store);
    let (id, _) = submit_campaign(&url, &request).expect("submit");
    let status = wait_done(&url, &id);
    assert_eq!(status.counts.get("hit"), Some(&2), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 0, "existing artifacts must be reused");

    // And the served bytes are exactly the stored bytes.
    for job in &status.jobs {
        let spec: Vec<JobSpec> = request.expand();
        let spec = spec.into_iter().find(|s| s.id() == job.id).expect("spec");
        assert!(matches!(spec.kind, JobKind::Sim { .. }));
        let served = fetch_artifact(&url, &job.hash).expect("fetch");
        let stored = ff_harness::store::ShardedStore::open(&store)
            .expect("store")
            .read(&spec)
            .expect("stored artifact");
        assert_eq!(served, stored);
    }
    server.shutdown();
}

/// A healthz field from a named section (`"counters"`, `"transport"`,
/// `"store"`).
fn health_field(url: &ServerUrl, section: &str, name: &str) -> u64 {
    let body = http_get(url, "/healthz").expect("healthz");
    let doc = Json::parse(&body).expect("healthz JSON");
    doc.get(section).and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

/// `GET /jobs/{hash}` validates the hash's *shape* before any store
/// lookup: anything but exactly 16 lowercase hex is a 400 (never a 404
/// from a bogus probe, never a confused path join), and a well-formed
/// but absent hash is a 404.
#[test]
fn malformed_job_hashes_are_rejected_with_400_before_any_lookup() {
    let store = temp_dir("hashshape");
    let (server, url) = start(&store);

    for bad in [
        "abc",                    // too short
        "0123456789abcdef0",      // too long
        "0123456789ABCDEF",       // uppercase hex
        "0123456789abcdeg",       // non-hex
        "..%2f..%2fetc%2fpasswd", // traversal, encoded
    ] {
        let (code, body) =
            http_request(&url, "GET", &format!("/jobs/{bad}"), None).expect("request");
        assert_eq!(code, 400, "hash `{bad}` must be a shape error, body: {body}");
        assert!(body.contains("16 lowercase hex"), "body: {body}");
    }
    // Raw traversal: the extra slashes make it a different (unknown)
    // route, not a store probe.
    let (code, _) = http_request(&url, "GET", "/jobs/../../etc/passwd", None).expect("request");
    assert!(code == 400 || code == 404, "traversal must not be served, got {code}");

    // Well-formed but absent: a clean 404.
    let (code, body) = http_request(&url, "GET", "/jobs/00000000000000aa", None).expect("request");
    assert_eq!(code, 404, "body: {body}");
    server.shutdown();
}

/// An oversized `Content-Length` is answered with `413 Payload Too
/// Large` from the headers alone — the server never reads the body, so
/// the test sends none.
#[test]
fn oversized_bodies_are_rejected_with_413_before_reading() {
    let store = temp_dir("oversize");
    let (server, url) = start(&store);

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let claimed = 2 * 1024 * 1024; // 2 MiB > the 1 MiB cap
    write!(
        stream,
        "POST /campaigns HTTP/1.1\r\nHost: test\r\nContent-Length: {claimed}\r\nConnection: close\r\n\r\n"
    )
    .expect("send headers");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 413 "), "response: {response}");
    assert!(response.contains("exceeds"), "response: {response}");

    assert_eq!(health_field(&url, "transport", "oversized"), 1);
    assert!(health_field(&url, "transport", "http_4xx") >= 1);
    server.shutdown();
}

/// With one worker wedged and a one-deep accept queue full, the accept
/// thread sheds the next connection with `503` + `Retry-After` instead
/// of queueing without bound — and counts the shed.
#[test]
fn a_full_accept_queue_sheds_load_with_503_and_retry_after() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use ff_server::{HttpOptions, HttpServer, Response, TransportCounters};

    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let (entered_h, release_h) = (Arc::clone(&entered), Arc::clone(&release));
    let counters = Arc::new(TransportCounters::default());
    let http = HttpServer::start_with(
        "127.0.0.1:0",
        HttpOptions { threads: 1, queue_cap: 1 },
        Arc::clone(&counters),
        move |_req| {
            entered_h.store(true, Ordering::SeqCst);
            while !release_h.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Response::ok("{}".to_string())
        },
    )
    .expect("http server");
    let url = ServerUrl::parse(&http.addr().to_string()).expect("url");

    // A: claims the lone worker and blocks inside the handler.
    let url_a = url.clone();
    let a = std::thread::spawn(move || http_request(&url_a, "GET", "/a", None));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !entered.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "first request never reached the handler");
        std::thread::sleep(Duration::from_millis(1));
    }
    // B: fills the one-deep queue.
    let url_b = url.clone();
    let b = std::thread::spawn(move || http_request(&url_b, "GET", "/b", None));
    let deadline = Instant::now() + Duration::from_secs(10);
    while counters.requests.load(Ordering::SeqCst) < 1 {
        assert!(Instant::now() < deadline, "worker never dequeued");
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(50)); // let the accept thread queue B

    // C: must be shed by the accept thread, with the backoff hint.
    let mut stream = TcpStream::connect(http.addr()).expect("connect");
    stream.write_all(b"GET /c HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 503 "), "response: {response}");
    assert!(response.contains("Retry-After: 1"), "response: {response}");
    assert!(response.contains("capacity"), "response: {response}");
    assert_eq!(counters.shed.load(Ordering::SeqCst), 1);

    release.store(true, Ordering::SeqCst);
    assert_eq!(a.join().unwrap().expect("A completes").0, 200);
    assert_eq!(b.join().unwrap().expect("B completes").0, 200);
    http.shutdown();
}

/// The retrying client survives connections reset mid-response: a
/// fault-injecting proxy kills the first two replies partway through,
/// the third passes, and `http_get` (idempotent, retried) returns the
/// intact document. The truncation is *detected* (Content-Length
/// mismatch), never silently accepted.
#[test]
fn the_client_retries_through_connection_resets() {
    use ff_harness::chaos::TcpProxy;
    use ff_harness::remote::{http_get_with, RetryPolicy};

    let store = temp_dir("reset");
    let (server, url) = start(&store);
    let direct = http_get(&url, "/healthz").expect("direct healthz");

    let proxy = TcpProxy::start(server.addr(), 2, 40).expect("proxy");
    let proxied_url = ServerUrl::parse(&proxy.addr().to_string()).expect("url");

    // Without retries, the truncated reply is a hard, *detected* error.
    let err = http_request(&proxied_url, "GET", "/healthz", None)
        .expect_err("a reset mid-body must not parse as success");
    assert!(
        err.contains("truncated") || err.contains("malformed"),
        "the cut must be detected, got: {err}"
    );

    // With retries (attempt 2 also resets, attempt 3 passes), the client
    // converges on the same bytes the direct route serves, modulo the
    // transport counters that tick per request.
    let policy = RetryPolicy { attempts: 4, base_delay_ms: 1, max_delay_ms: 20, seed: 7 };
    let body = http_get_with(&proxied_url, "/healthz", &policy).expect("retried GET succeeds");
    assert_eq!(proxy.connections(), 3, "two resets + one clean pass");
    let doc = Json::parse(&body).expect("intact JSON after retries");
    assert_eq!(doc.get("status"), Json::parse(&direct).unwrap().get("status"));

    proxy.shutdown();
    server.shutdown();
}

/// Crash damage across a restart: one artifact silently truncated, one
/// campaign checkpoint corrupted. The restarted server quarantines the
/// artifact in its startup scan, skips the unreadable checkpoint without
/// panicking, and a resubmission re-simulates *only* the damaged config
/// — the intact artifact stays a memo hit and every served byte matches
/// the store.
#[test]
fn a_restart_over_crash_damage_heals_without_resimulating_intact_artifacts() {
    let store = temp_dir("crashdamage");
    let (server, url) = start(&store);
    let request = tiny_request();
    let (id, _) = submit_campaign(&url, &request).expect("submit");
    wait_done(&url, &id);
    server.shutdown();

    // Silently truncate one artifact (crash damage the rename-atomicity
    // protocol cannot prevent)...
    let specs = request.expand();
    let victim = ff_harness::store::sharded_path(&store, &specs[0]);
    let bytes = std::fs::read(&victim).expect("victim artifact");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate");
    // ...and corrupt the campaign's resume checkpoint.
    let checkpoint = store.join(CAMPAIGNS_DIR).join(&id).join("request.json");
    std::fs::write(&checkpoint, "{ definitely not json").expect("corrupt checkpoint");

    let (server, url) = start(&store);
    // The unreadable checkpoint is skipped, not resumed and not fatal.
    assert!(
        campaign_status(&url, &id).is_err(),
        "a corrupt checkpoint must not resurrect the campaign"
    );
    // The startup scan quarantined the damaged artifact.
    assert_eq!(health_field(&url, "store", "corrupt_detected"), 1);
    assert!(store.join("corrupt").is_dir(), "quarantine ledger directory exists");

    let (id2, _) = submit_campaign(&url, &request).expect("resubmit");
    let status = wait_done(&url, &id2);
    assert_eq!(status.counts.get("hit"), Some(&1), "counts: {:?}", status.counts);
    assert_eq!(status.counts.get("ok"), Some(&1), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 1, "only the damaged config re-simulates");
    assert_eq!(counter(&url, "hits"), 1);

    // Served bytes equal stored bytes for both configs; transport
    // counters saw this session's traffic.
    for job in &status.jobs {
        let served = fetch_artifact(&url, &job.hash).expect("fetch");
        let spec = specs.iter().find(|s| s.id() == job.id).expect("spec");
        let stored = ff_harness::store::ShardedStore::open(&store)
            .expect("store")
            .read(spec)
            .expect("stored artifact");
        assert_eq!(served, stored, "served bytes must match the healed store");
    }
    assert!(health_field(&url, "transport", "requests") > 0);
    server.shutdown();
}
