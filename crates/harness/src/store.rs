//! The sharded, memoizing artifact store.
//!
//! Artifacts are content-addressed by [`JobSpec::config_hash`] and laid
//! out in 256 shard directories named by the hash's first two hex chars
//! (`<root>/ab/sim-…-ab12….json`), so a long-running service never puts
//! millions of files in one directory and per-shard locks never contend
//! across shards. Pre-sharding `results/` trees keep working: every read
//! falls back to the legacy flat layout, and `ff-campaign migrate-store`
//! moves a flat tree into shards in one shot.
//!
//! Two layers live here:
//!
//! * free functions ([`find_artifact`], [`write_artifact`],
//!   [`find_by_hash`], [`migrate_flat`]) — the layout rules, used by the
//!   batch campaign runner;
//! * [`ShardedStore`] — the same layout behind per-shard mutexes, used by
//!   `ff-server` as a process-wide memoization cache shared by every
//!   campaign and client (writes are tmp-file + atomic rename, so readers
//!   never observe a torn artifact);
//! * [`ArtifactStore`] — the read side: an artifact directory as a
//!   [`ResultSource`], so the figure/table experiments in
//!   `ff-experiments` render the same reports from checkpointed artifacts
//!   that `Suite` renders from live simulations.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ff_engine::RunResult;
use ff_experiments::{HierKind, ModelKind, ResultSource};
use ff_workloads::{Scale, Workload};

use crate::artifact::{parse_report_artifact, parse_sim_artifact};
use crate::chaos;
use crate::integrity::{self, Provenance, ReadError};
use crate::job::JobSpec;

/// Number of shard directories (two hex chars of the config hash).
pub const SHARD_COUNT: usize = 256;

/// The shard directory name (`"00"`..`"ff"`) for a config hash: the top
/// byte, i.e. the first two hex chars of the filename-embedded hash.
pub fn shard_name(hash: u64) -> String {
    format!("{:02x}", (hash >> 56) as u8)
}

/// The artifact path for `spec` in the sharded layout (where new
/// artifacts are written).
pub fn sharded_path(root: &Path, spec: &JobSpec) -> PathBuf {
    root.join(shard_name(spec.config_hash())).join(spec.artifact_filename())
}

/// The artifact path for `spec` in the legacy flat layout (read-only
/// fallback for pre-sharding `results/` trees).
pub fn flat_path(root: &Path, spec: &JobSpec) -> PathBuf {
    root.join(spec.artifact_filename())
}

/// Finds an existing artifact for `spec`: the sharded layout first, then
/// the legacy flat layout.
pub fn find_artifact(root: &Path, spec: &JobSpec) -> Option<PathBuf> {
    let sharded = sharded_path(root, spec);
    if sharded.is_file() {
        return Some(sharded);
    }
    let flat = flat_path(root, spec);
    if flat.is_file() {
        return Some(flat);
    }
    None
}

/// Finds an artifact by config hash alone (the `GET /jobs/{hash}` lookup):
/// scans the hash's shard directory, then the flat root, for a file whose
/// name ends in `-{hash:016x}.json`.
pub fn find_by_hash(root: &Path, hash: u64) -> Option<PathBuf> {
    let suffix = format!("-{hash:016x}.json");
    for dir in [root.join(shard_name(hash)), root.to_path_buf()] {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(&suffix) && entry.path().is_file() {
                return Some(entry.path());
            }
        }
    }
    None
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `text` to `path` durably and atomically: the bytes land in a
/// `.tmp-*` sibling, are fsynced, renamed over the final name, and the
/// parent directory is fsynced so the rename itself survives a crash. A
/// concurrent reader sees either no file or a complete one; a crash at
/// any point leaves at worst an orphaned temp file, swept by
/// [`sweep_tmp`] on the next store open. All I/O routes through
/// [`chaos`], so the chaos suite exercises exactly this code path.
///
/// # Errors
///
/// On failure to write, fsync, or rename (an injected torn write
/// surfaces here as an error with the partial temp file left behind,
/// exactly like a killed process).
pub fn durable_write(path: &Path, text: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = dir.join(format!(
        ".tmp-{}-{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        name,
    ));
    chaos::write(&tmp, text.as_bytes())?;
    chaos::fsync_file(&tmp)?;
    chaos::rename(&tmp, path)?;
    chaos::fsync_dir(dir);
    Ok(())
}

/// Writes `text` as the artifact for `spec` in the sharded layout,
/// sealed with an integrity footer ([`integrity::seal`]) and written
/// durably ([`durable_write`]): a concurrent reader sees either no
/// artifact or a complete, checksummed one, never a torn write, and the
/// artifact survives a crash immediately after the call returns.
///
/// # Errors
///
/// On failure to create the shard directory or write/fsync/rename the
/// file.
pub fn write_artifact(root: &Path, spec: &JobSpec, text: &str) -> std::io::Result<PathBuf> {
    let path = sharded_path(root, spec);
    let shard = path.parent().expect("sharded path has a parent");
    std::fs::create_dir_all(shard)?;
    durable_write(&path, &integrity::seal(text))?;
    Ok(path)
}

/// Removes orphaned `.tmp-*` files (crashed or torn writers) from the
/// store root and every shard directory, returning how many were swept.
/// Racing an in-flight writer is harmless-but-lossy: the writer's
/// rename fails, the job reports a write error, and the retry loop or
/// next resume re-produces the artifact.
///
/// # Errors
///
/// On a filesystem error scanning directories.
pub fn sweep_tmp(root: &Path) -> std::io::Result<usize> {
    let mut swept = 0;
    let mut dirs = vec![root.to_path_buf()];
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                dirs.push(entry.path());
            }
        }
    }
    for dir in dirs {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let name = entry.file_name();
            if integrity::is_tmp_name(&name.to_string_lossy()) && entry.path().is_file() {
                std::fs::remove_file(entry.path())?;
                swept += 1;
            }
        }
    }
    Ok(swept)
}

/// Parses a config hash that must be *exactly* 16 lowercase hex chars —
/// the only shape the server and store accept before touching the
/// filesystem, so path-traversal-shaped or abbreviated hashes are
/// rejected up front rather than probed against the disk.
pub fn parse_hash16(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// Whether a file name looks like an artifact (`sim-…-{16 hex}.json` or
/// `report-…-{16 hex}.json`), returning its embedded config hash.
pub fn artifact_hash_of(name: &str) -> Option<u64> {
    if !name.starts_with("sim-") && !name.starts_with("report-") {
        return None;
    }
    let stem = name.strip_suffix(".json")?;
    let (_, hex) = stem.rsplit_once('-')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Migrates a legacy flat artifact tree into the sharded layout: every
/// `sim-*.json` / `report-*.json` directly under `root` moves into its
/// hash's shard directory. Non-artifact files (`manifest.json`,
/// `quarantine.json`, `bundles/`) stay put. Returns the number of files
/// moved. Idempotent: a second run moves nothing.
///
/// # Errors
///
/// On a filesystem error while scanning or moving.
pub fn migrate_flat(root: &Path) -> std::io::Result<usize> {
    let mut moved = 0;
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        if !entry.path().is_file() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let Some(hash) = artifact_hash_of(&name) else { continue };
        let shard = root.join(shard_name(hash));
        std::fs::create_dir_all(&shard)?;
        std::fs::rename(entry.path(), shard.join(&name))?;
        moved += 1;
    }
    Ok(moved)
}

/// The sharded artifact layout behind per-shard mutexes: the write side
/// of the `ff-server` global memoization cache. Lookups and publishes for
/// the same shard serialize; different shards never contend. (In-flight
/// deduplication — two concurrent requests for the same hash simulating
/// once — is the scheduler's job; the store guarantees only that a
/// published artifact is complete and that a lookup racing a publish sees
/// one or the other.)
pub struct ShardedStore {
    root: PathBuf,
    locks: Vec<Mutex<()>>,
    counters: StoreCounters,
}

/// Integrity observability for one [`ShardedStore`], surfaced by
/// `ff-server`'s `/healthz`.
#[derive(Debug, Default)]
pub struct StoreCounters {
    /// Reads that verified a checksum footer.
    pub sealed_reads: AtomicU64,
    /// Reads that accepted a footerless legacy artifact.
    pub legacy_reads: AtomicU64,
    /// Corrupt artifacts detected (and moved to the `corrupt/` ledger).
    pub corrupt_detected: AtomicU64,
    /// Orphaned `.tmp-*` files swept at open.
    pub tmp_swept: AtomicU64,
}

impl StoreCounters {
    /// The counters as a JSON object (the `"store"` section of
    /// `ff-server`'s `/healthz`).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj(vec![
            ("sealed_reads", Json::U64(self.sealed_reads.load(Ordering::Relaxed))),
            ("legacy_reads", Json::U64(self.legacy_reads.load(Ordering::Relaxed))),
            ("corrupt_detected", Json::U64(self.corrupt_detected.load(Ordering::Relaxed))),
            ("tmp_swept", Json::U64(self.tmp_swept.load(Ordering::Relaxed))),
        ])
    }
}

impl ShardedStore {
    /// Opens (creating if needed) the store rooted at `root`, sweeping
    /// any orphaned `.tmp-*` files left by crashed writers.
    ///
    /// # Errors
    ///
    /// On failure to create the root directory or scan it for the sweep.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let swept = sweep_tmp(&root)?;
        let counters = StoreCounters::default();
        counters.tmp_swept.store(swept as u64, Ordering::Relaxed);
        Ok(ShardedStore {
            root,
            locks: (0..SHARD_COUNT).map(|_| Mutex::new(())).collect(),
            counters,
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's integrity counters.
    pub fn counters(&self) -> &StoreCounters {
        &self.counters
    }

    fn lock(&self, hash: u64) -> std::sync::MutexGuard<'_, ()> {
        let guard = self.locks[(hash >> 56) as usize].lock();
        // A poisoned shard lock only means another thread panicked while
        // holding it; the layout itself is rename-atomic, so proceed.
        guard.unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Verifies and strips the integrity footer of the artifact at
    /// `path`. A corrupt file is moved to the `corrupt/` ledger
    /// (self-healing: the next lookup is a memoization miss that
    /// re-simulates) and reads as absent. Caller holds the shard lock.
    fn read_verified_locked(&self, path: &Path) -> Option<String> {
        match integrity::read_verified(path) {
            Ok((payload, Provenance::Sealed)) => {
                self.counters.sealed_reads.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Ok((payload, Provenance::Legacy)) => {
                self.counters.legacy_reads.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(ReadError::Io(_)) => None,
            Err(ReadError::Corrupt(reason)) => {
                self.counters.corrupt_detected.fetch_add(1, Ordering::Relaxed);
                let _ = integrity::quarantine_corrupt(&self.root, path, &reason);
                None
            }
        }
    }

    /// Whether a *verified* artifact for `spec` exists (sharded or
    /// legacy flat). A corrupt entry counts as absent — and is healed
    /// away — so memoization can never serve damaged bytes.
    pub fn contains(&self, spec: &JobSpec) -> bool {
        let _guard = self.lock(spec.config_hash());
        self.read_locked(spec).is_some()
    }

    fn read_locked(&self, spec: &JobSpec) -> Option<String> {
        // Two probes: if the sharded copy is corrupt it is quarantined
        // by the first pass, and a legacy flat fallback (hidden behind
        // it until now) may still satisfy the read.
        for _ in 0..2 {
            let path = find_artifact(&self.root, spec)?;
            if let Some(payload) = self.read_verified_locked(&path) {
                return Some(payload);
            }
        }
        None
    }

    /// Reads the artifact for `spec`, if present and intact.
    pub fn read(&self, spec: &JobSpec) -> Option<String> {
        let _guard = self.lock(spec.config_hash());
        self.read_locked(spec)
    }

    /// Reads an artifact by config hash alone, verifying integrity.
    pub fn read_by_hash(&self, hash: u64) -> Option<String> {
        let _guard = self.lock(hash);
        for _ in 0..2 {
            let path = find_by_hash(&self.root, hash)?;
            if let Some(payload) = self.read_verified_locked(&path) {
                return Some(payload);
            }
        }
        None
    }

    /// Runs a full integrity scan over the store (see
    /// [`integrity::fsck`]), folding what it finds into the counters.
    ///
    /// # Errors
    ///
    /// On a filesystem error scanning the store.
    pub fn fsck(&self) -> std::io::Result<integrity::FsckReport> {
        // Serialize against every shard by taking no per-shard locks but
        // relying on rename-atomicity: fsck only ever moves whole files
        // that fail verification, which a concurrent publish replaces
        // wholesale anyway.
        let report = integrity::fsck(&self.root)?;
        self.counters.corrupt_detected.fetch_add(report.corrupt.len() as u64, Ordering::Relaxed);
        self.counters.tmp_swept.fetch_add(report.orphan_tmp as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Publishes `text` as the artifact for `spec` (atomic rename).
    ///
    /// # Errors
    ///
    /// On a filesystem error.
    pub fn publish(&self, spec: &JobSpec, text: &str) -> std::io::Result<PathBuf> {
        let _guard = self.lock(spec.config_hash());
        write_artifact(&self.root, spec, text)
    }
}

/// A campaign artifact directory, memoized per grid point.
pub struct ArtifactStore {
    dir: PathBuf,
    scale: Scale,
    cache: BTreeMap<(ModelKind, HierKind, &'static str, u64), RunResult>,
}

impl ArtifactStore {
    /// Opens (without scanning) the artifact directory for `scale`.
    pub fn new(dir: impl Into<PathBuf>, scale: Scale) -> Self {
        ArtifactStore { dir: dir.into(), scale, cache: BTreeMap::new() }
    }

    /// The scale this store reads artifacts for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The preferred (sharded) artifact path for `spec` inside this store.
    pub fn path_for(&self, spec: &JobSpec) -> PathBuf {
        sharded_path(&self.dir, spec)
    }

    /// Whether a (content-address-matching) artifact exists for `spec`,
    /// in the sharded layout or the legacy flat one.
    pub fn contains(&self, spec: &JobSpec) -> bool {
        find_artifact(&self.dir, spec).is_some()
    }

    /// Loads the simulation result for one grid point.
    ///
    /// # Errors
    ///
    /// Describes the missing/corrupt artifact, including the `ff-campaign`
    /// invocation that would produce it.
    pub fn try_result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> Result<&RunResult, String> {
        let key = (model, hier, bench, seed);
        if !self.cache.contains_key(&key) {
            let spec = JobSpec::sim(model, hier, bench, seed, self.scale);
            let path = find_artifact(&self.dir, &spec).unwrap_or_else(|| self.path_for(&spec));
            let (text, _) = integrity::read_verified(&path).map_err(|e| match e {
                ReadError::Io(e) => format!(
                    "no artifact for {} at {} ({e}); run `ff-campaign run --all --scale {}` first",
                    spec.id(),
                    path.display(),
                    crate::job::scale_name(self.scale),
                ),
                ReadError::Corrupt(reason) => format!(
                    "corrupt artifact {}: {reason}; run `ff-campaign fsck` to quarantine and re-simulate",
                    path.display(),
                ),
            })?;
            let result = parse_sim_artifact(&spec, &text)
                .map_err(|e| format!("corrupt artifact {}: {e}", path.display()))?;
            self.cache.insert(key, result);
        }
        Ok(&self.cache[&key])
    }

    /// Like [`ArtifactStore::try_result_seeded`] but panics with the error
    /// message (matching [`ResultSource::result`]'s contract).
    pub fn result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> &RunResult {
        // Two-phase to satisfy the borrow checker: probe first, then return.
        if let Err(e) = self.try_result_seeded(model, hier, bench, seed) {
            panic!("{e}");
        }
        &self.cache[&(model, hier, bench, seed)]
    }

    /// The rendered text of a report artifact.
    ///
    /// # Errors
    ///
    /// Describes the missing/corrupt artifact.
    pub fn try_report_text(&self, name: &'static str) -> Result<String, String> {
        let spec = JobSpec::report(name, self.scale);
        let path = find_artifact(&self.dir, &spec).unwrap_or_else(|| self.path_for(&spec));
        let (text, _) = integrity::read_verified(&path).map_err(|e| match e {
            ReadError::Io(e) => format!(
                "no artifact for {} at {} ({e}); run `ff-campaign run --all --scale {}` first",
                spec.id(),
                path.display(),
                crate::job::scale_name(self.scale),
            ),
            ReadError::Corrupt(reason) => format!(
                "corrupt artifact {}: {reason}; run `ff-campaign fsck` to quarantine and re-simulate",
                path.display(),
            ),
        })?;
        parse_report_artifact(&spec, &text)
            .map_err(|e| format!("corrupt artifact {}: {e}", path.display()))
    }

    /// The directory this store reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl ResultSource for ArtifactStore {
    fn benchmarks(&self) -> Vec<&'static str> {
        Workload::NAMES.to_vec()
    }

    fn result(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> &RunResult {
        self.result_seeded(model, hier, bench, 0)
    }

    fn result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> &RunResult {
        ArtifactStore::result_seeded(self, model, hier, bench, seed)
    }

    fn report_text(&mut self, name: &'static str) -> Result<String, String> {
        self.try_report_text(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::render_sim_artifact;
    use ff_experiments::Suite;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ff-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_round_trips_a_live_result_from_the_sharded_layout() {
        let dir = temp_dir("roundtrip");
        let w = Workload::by_name("mesa", Scale::Test).unwrap();
        let live = Suite::execute(ModelKind::InOrder, HierKind::Base, &w);
        let spec = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mesa", 0, Scale::Test);
        write_artifact(&dir, &spec, &render_sim_artifact(&spec, &live)).unwrap();

        let mut store = ArtifactStore::new(&dir, Scale::Test);
        assert!(store.contains(&spec));
        let loaded = store.result(ModelKind::InOrder, HierKind::Base, "mesa");
        assert_eq!(loaded.stats, live.stats);
        // Artifacts deliberately exclude the simulator's self-instrumentation
        // counters, so the round trip zeroes them; everything else survives.
        let mut expected = live.activity;
        expected.select_visits = 0;
        expected.alloc_count = 0;
        assert_eq!(loaded.activity, expected);
        assert_eq!(loaded.mem_stats, live.mem_stats);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flat_layout_reads_still_work() {
        let dir = temp_dir("flat");
        let w = Workload::by_name("mesa", Scale::Test).unwrap();
        let live = Suite::execute(ModelKind::InOrder, HierKind::Base, &w);
        let spec = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mesa", 0, Scale::Test);
        // Legacy flat layout: artifact directly under the root.
        std::fs::write(dir.join(spec.artifact_filename()), render_sim_artifact(&spec, &live))
            .unwrap();

        let mut store = ArtifactStore::new(&dir, Scale::Test);
        assert!(store.contains(&spec));
        let loaded = store.result(ModelKind::InOrder, HierKind::Base, "mesa");
        assert_eq!(loaded.stats, live.stats);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrate_flat_moves_artifacts_into_shards() {
        let dir = temp_dir("migrate");
        let w = Workload::by_name("mesa", Scale::Test).unwrap();
        let live = Suite::execute(ModelKind::InOrder, HierKind::Base, &w);
        let spec = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mesa", 0, Scale::Test);
        let flat = dir.join(spec.artifact_filename());
        std::fs::write(&flat, render_sim_artifact(&spec, &live)).unwrap();
        // Bystanders must not move.
        std::fs::write(dir.join("manifest.json"), "{}\n").unwrap();
        std::fs::write(dir.join("quarantine.json"), "{}\n").unwrap();

        assert_eq!(migrate_flat(&dir).unwrap(), 1);
        assert!(!flat.exists(), "flat copy must move");
        assert!(sharded_path(&dir, &spec).is_file(), "artifact must land in its shard");
        assert!(dir.join("manifest.json").is_file());
        assert!(dir.join("quarantine.json").is_file());
        // Idempotent.
        assert_eq!(migrate_flat(&dir).unwrap(), 0);

        let mut store = ArtifactStore::new(&dir, Scale::Test);
        assert!(store.contains(&spec));
        assert_eq!(store.result(ModelKind::InOrder, HierKind::Base, "mesa").stats, live.stats);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn find_by_hash_searches_shard_then_flat() {
        let dir = temp_dir("byhash");
        let spec = JobSpec::sim(ModelKind::Ooo, HierKind::Base, "mcf", 0, Scale::Test);
        let hash = spec.config_hash();
        assert!(find_by_hash(&dir, hash).is_none());
        write_artifact(&dir, &spec, "{}\n").unwrap();
        assert_eq!(find_by_hash(&dir, hash), Some(sharded_path(&dir, &spec)));
        // A flat legacy artifact is found too once the sharded one is gone.
        std::fs::remove_file(sharded_path(&dir, &spec)).unwrap();
        std::fs::write(dir.join(spec.artifact_filename()), "{}\n").unwrap();
        assert_eq!(find_by_hash(&dir, hash), Some(dir.join(spec.artifact_filename())));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_store_publishes_and_reads_under_locks() {
        let dir = temp_dir("shared");
        let store = ShardedStore::open(&dir).unwrap();
        let spec = JobSpec::sim(ModelKind::Multipass, HierKind::Base, "gzip", 0, Scale::Test);
        assert!(!store.contains(&spec));
        assert!(store.read(&spec).is_none());
        store.publish(&spec, "{\"x\": 1}\n").unwrap();
        assert!(store.contains(&spec));
        assert_eq!(store.read(&spec).unwrap(), "{\"x\": 1}\n");
        assert_eq!(store.read_by_hash(spec.config_hash()).unwrap(), "{\"x\": 1}\n");
        assert!(store.read_by_hash(0xdead_beef).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_names_cover_the_hash_prefix() {
        assert_eq!(shard_name(0x0000_0000_0000_0000), "00");
        assert_eq!(shard_name(0xab12_3456_789a_bcde), "ab");
        assert_eq!(shard_name(0xff00_0000_0000_0001), "ff");
        let spec = JobSpec::sim(ModelKind::Ooo, HierKind::Config2, "art", 3, Scale::Paper);
        let f = spec.artifact_filename();
        // The shard name is the filename-embedded hash's first two chars.
        let hex = format!("{:016x}", spec.config_hash());
        assert_eq!(shard_name(spec.config_hash()), hex[..2].to_string());
        assert!(f.contains(&hex));
    }

    #[test]
    fn parse_hash16_accepts_only_exact_lowercase_hex() {
        assert_eq!(parse_hash16("00000000deadbeef"), Some(0xdead_beef));
        assert_eq!(parse_hash16("ffffffffffffffff"), Some(u64::MAX));
        for bad in [
            "deadbeef",
            "00000000DEADBEEF",
            "../../../../etc/p",
            "0000000deadbeef!",
            "00000000deadbeef0",
            "",
        ] {
            assert_eq!(parse_hash16(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn open_sweeps_orphaned_tmp_files_and_counts_them() {
        let dir = temp_dir("sweep");
        let shard = dir.join("ab");
        std::fs::create_dir_all(&shard).unwrap();
        std::fs::write(dir.join(".tmp-1-0-sim-x.json"), "partial").unwrap();
        std::fs::write(shard.join(".tmp-2-1-sim-y.json"), "partial").unwrap();
        std::fs::write(dir.join("manifest.json"), "{}\n").unwrap();
        let store = ShardedStore::open(&dir).unwrap();
        assert_eq!(store.counters().tmp_swept.load(Ordering::Relaxed), 2);
        assert!(!dir.join(".tmp-1-0-sim-x.json").exists());
        assert!(!shard.join(".tmp-2-1-sim-y.json").exists());
        assert!(dir.join("manifest.json").exists(), "bystanders survive the sweep");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_artifact_reads_as_absent_and_is_quarantined() {
        let dir = temp_dir("selfheal");
        let store = ShardedStore::open(&dir).unwrap();
        let spec = JobSpec::sim(ModelKind::Multipass, HierKind::Config1, "gzip", 1, Scale::Test);
        let path = store.publish(&spec, "{\"x\": 42}\n").unwrap();
        assert!(store.contains(&spec));
        // Silently truncate the sealed artifact on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap();
        assert!(store.read(&spec).is_none(), "truncated artifact must not be served");
        assert!(!path.exists(), "corrupt artifact must be healed away");
        assert!(!store.contains(&spec), "healed entry is a memoization miss");
        assert_eq!(store.counters().corrupt_detected.load(Ordering::Relaxed), 1);
        let ledger_dir = dir.join(crate::integrity::CORRUPT_DIR);
        assert!(ledger_dir.join(spec.artifact_filename()).exists(), "specimen kept in ledger");
        // Republish: the store is whole again.
        store.publish(&spec, "{\"x\": 42}\n").unwrap();
        assert_eq!(store.read(&spec).unwrap(), "{\"x\": 42}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sharded_copy_falls_back_to_intact_flat_legacy() {
        let dir = temp_dir("fallback");
        let store = ShardedStore::open(&dir).unwrap();
        let spec = JobSpec::sim(ModelKind::InOrder, HierKind::Config2, "art", 0, Scale::Test);
        let sharded = store.publish(&spec, "{\"v\": 1}\n").unwrap();
        // Plant an intact legacy flat copy *behind* the sharded one, then
        // corrupt the sharded copy.
        std::fs::write(dir.join(spec.artifact_filename()), "{\"v\": 1}\n").unwrap();
        std::fs::write(&sharded, "{\"v\"").unwrap();
        assert_eq!(
            store.read(&spec).unwrap(),
            "{\"v\": 1}\n",
            "flat fallback must satisfy the read"
        );
        assert!(!sharded.exists(), "corrupt sharded copy healed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_write_is_atomic_and_leaves_no_tmp() {
        let dir = temp_dir("durable");
        let path = dir.join("file.json");
        durable_write(&path, "{\"a\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 1}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "no temp debris after a clean write");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_artifact_error_names_the_campaign_command() {
        let mut store = ArtifactStore::new("/nonexistent-ff-campaign-dir", Scale::Test);
        let err = store.try_result_seeded(ModelKind::Ooo, HierKind::Base, "mcf", 0).unwrap_err();
        assert!(err.contains("ff-campaign run --all"), "{err}");
        assert!(err.contains("mcf/ooo/base/s0@test"), "{err}");
    }
}
