//! Campaign job identities: grid points, config hashes, artifact names.

use ff_experiments::{HierKind, ModelKind};
use ff_workloads::Scale;

/// Artifact/manifest format version. Bumping this changes every config
/// hash, forcing a full re-run on resume (stale artifacts no longer
/// match).
pub const FORMAT_VERSION: u32 = 1;

/// The standalone report jobs `ff-campaign run --all` schedules alongside
/// the simulation grid (they regenerate the `results/` files that are not
/// derivable from per-(model, hierarchy, benchmark) artifacts).
pub const REPORT_NAMES: [&str; 2] = ["ablation_structures", "unroll_effect"];

/// What one campaign job computes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// One simulation grid point on the Table 2 machine.
    Sim {
        /// Execution model.
        model: ModelKind,
        /// Cache hierarchy.
        hier: HierKind,
        /// Benchmark name (one of [`ff_workloads::Workload::NAMES`]).
        bench: &'static str,
        /// Workload-generator seed (0 = canonical).
        seed: u64,
    },
    /// A standalone text report (see [`REPORT_NAMES`]).
    Report {
        /// Report name.
        name: &'static str,
    },
}

/// One schedulable unit of campaign work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// Workload scale.
    pub scale: Scale,
}

/// The `test`/`paper` name of a scale (used in paths and hashes).
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
    }
}

/// Parses a scale name.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s.to_ascii_lowercase().as_str() {
        "test" => Some(Scale::Test),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// 64-bit FNV-1a — the content-address hash for artifacts. Stable across
/// platforms and runs by construction (no randomized hasher state).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl JobSpec {
    /// A simulation grid point.
    pub fn sim(
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
        scale: Scale,
    ) -> Self {
        JobSpec { kind: JobKind::Sim { model, hier, bench, seed }, scale }
    }

    /// A standalone report job.
    pub fn report(name: &'static str, scale: Scale) -> Self {
        JobSpec { kind: JobKind::Report { name }, scale }
    }

    /// Human-readable job id, e.g. `mcf/MP/base/s0@test`.
    pub fn id(&self) -> String {
        match &self.kind {
            JobKind::Sim { model, hier, bench, seed } => {
                format!(
                    "{bench}/{}/{}/s{seed}@{}",
                    model.name(),
                    hier.name(),
                    scale_name(self.scale)
                )
            }
            JobKind::Report { name } => format!("report/{name}@{}", scale_name(self.scale)),
        }
    }

    /// The canonical configuration string the config hash covers: format
    /// version plus every input that determines the artifact's content.
    pub fn canonical(&self) -> String {
        match &self.kind {
            JobKind::Sim { model, hier, bench, seed } => format!(
                "ff-campaign/v{FORMAT_VERSION}|sim|model={}|hier={}|bench={bench}|scale={}|seed={seed}",
                model.name(),
                hier.name(),
                scale_name(self.scale),
            ),
            JobKind::Report { name } => format!(
                "ff-campaign/v{FORMAT_VERSION}|report|name={name}|scale={}",
                scale_name(self.scale),
            ),
        }
    }

    /// The job's config hash (content address).
    pub fn config_hash(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// The artifact file name under the campaign output directory, e.g.
    /// `sim-mcf-MP-base-s0-1a2b3c4d5e6f7081.json`.
    pub fn artifact_filename(&self) -> String {
        let hash = self.config_hash();
        match &self.kind {
            JobKind::Sim { model, hier, bench, seed } => {
                format!("sim-{bench}-{}-{}-s{seed}-{hash:016x}.json", model.name(), hier.name())
            }
            JobKind::Report { name } => format!("report-{name}-{hash:016x}.json"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_separate_every_dimension() {
        let base = JobSpec::sim(ModelKind::Multipass, HierKind::Base, "mcf", 0, Scale::Test);
        let variants = [
            JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mcf", 0, Scale::Test),
            JobSpec::sim(ModelKind::Multipass, HierKind::Config1, "mcf", 0, Scale::Test),
            JobSpec::sim(ModelKind::Multipass, HierKind::Base, "gap", 0, Scale::Test),
            JobSpec::sim(ModelKind::Multipass, HierKind::Base, "mcf", 1, Scale::Test),
            JobSpec::sim(ModelKind::Multipass, HierKind::Base, "mcf", 0, Scale::Paper),
            JobSpec::report("ablation_structures", Scale::Test),
        ];
        for v in &variants {
            assert_ne!(v.config_hash(), base.config_hash(), "{} vs {}", v.id(), base.id());
        }
        // Same spec → same hash (stable content address).
        let again = JobSpec::sim(ModelKind::Multipass, HierKind::Base, "mcf", 0, Scale::Test);
        assert_eq!(again.config_hash(), base.config_hash());
    }

    #[test]
    fn filenames_embed_the_hash() {
        let s = JobSpec::sim(ModelKind::Ooo, HierKind::Config2, "art", 3, Scale::Paper);
        let f = s.artifact_filename();
        assert!(f.starts_with("sim-art-ooo-config2-s3-"), "{f}");
        assert!(f.contains(&format!("{:016x}", s.config_hash())));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn scale_names_round_trip() {
        for s in [Scale::Test, Scale::Paper] {
            assert_eq!(parse_scale(scale_name(s)), Some(s));
        }
        assert_eq!(parse_scale("nosuch"), None);
    }
}
